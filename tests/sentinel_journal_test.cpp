//===- tests/sentinel_journal_test.cpp - Append-journal recovery tests ----===//
//
// The balign-sentinel checkpoint journal's exactly-once contract, attacked
// byte-precisely: a torn tail at *every* possible cut point must salvage
// exactly the complete records before the cut, a checksum-corrupted record
// must drop the tail from that record on, a pre-journal plain-line
// checkpoint must migrate in place, and an unknown format version must be
// refused rather than clobbered. The resume edge cases of `align_tool
// --checkpoint` (empty journal, duplicates, mid-record ends) live here
// too, against the same AppendJournal the tool uses.
//
//===--------------------------------------------------------------------===//

#include "robust/Journal.h"

#include "robust/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace balign;

namespace {

constexpr size_t HeaderBytes = 16; ///< magic[8] + version u32 + reserved u32.

std::string freshPath(const char *Name) {
  std::string Path = ::testing::TempDir() + "balign_journal_" + Name;
  std::filesystem::remove(Path);
  return Path;
}

std::vector<uint8_t> readBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeBytes(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Size of one encoded record: u32 size + bytes + u64 checksum.
size_t encodedSize(const std::string &Record) {
  return 4 + Record.size() + 8;
}

/// Builds a journal at \p Path holding \p Records; returns the byte
/// offsets of every record boundary (header boundary first).
std::vector<size_t> buildJournal(const std::string &Path,
                                 const std::vector<std::string> &Records) {
  AppendJournal J;
  std::string Error;
  EXPECT_TRUE(J.open(Path, &Error)) << Error;
  std::vector<size_t> Boundaries{HeaderBytes};
  size_t At = HeaderBytes;
  for (const std::string &R : Records) {
    EXPECT_TRUE(J.append(R, &Error)) << Error;
    At += encodedSize(R);
    Boundaries.push_back(At);
  }
  J.close();
  return Boundaries;
}

} // namespace

TEST(SentinelJournalTest, MissingFileOpensEmpty) {
  std::string Path = freshPath("missing");
  AppendJournal J;
  std::string Error;
  ASSERT_TRUE(J.open(Path, &Error)) << Error;
  EXPECT_TRUE(J.isOpen());
  EXPECT_TRUE(J.records().empty());
  EXPECT_FALSE(J.stats().RecoveredTail);
  EXPECT_FALSE(J.stats().MigratedLegacy);
  J.close();

  // The header was written: a reopen parses it, still empty. This is the
  // "--checkpoint FILE with an empty journal" resume edge case.
  AppendJournal Again;
  ASSERT_TRUE(Again.open(Path, &Error)) << Error;
  EXPECT_TRUE(Again.records().empty());
  EXPECT_EQ(HeaderBytes, std::filesystem::file_size(Path));
}

TEST(SentinelJournalTest, AppendsRoundTripInOrderWithDuplicates) {
  std::string Path = freshPath("roundtrip");
  std::vector<std::string> Records{"a.cfg", "b.cfg", "a.cfg", ""};
  buildJournal(Path, Records);

  AppendJournal J;
  std::string Error;
  ASSERT_TRUE(J.open(Path, &Error)) << Error;
  // Duplicates (a crash between append and the next run's resume check
  // replays one) and empty records survive verbatim, in append order;
  // set semantics are the consumer's business.
  EXPECT_EQ(Records, J.records());
  EXPECT_EQ(4u, J.stats().Records);
  EXPECT_FALSE(J.stats().RecoveredTail);
}

TEST(SentinelJournalTest, TornTailTruncatedAtEveryCutPoint) {
  std::string Path = freshPath("torn");
  std::vector<std::string> Records{"first.cfg", "second", "third-prog.cfg"};
  std::vector<size_t> Boundaries = buildJournal(Path, Records);
  std::vector<uint8_t> Full = readBytes(Path);
  ASSERT_EQ(Boundaries.back(), Full.size());

  // Cut the file at every byte length from the header boundary to one
  // short of the full file — every state a kill mid-append can leave.
  for (size_t Cut = HeaderBytes; Cut != Full.size(); ++Cut) {
    writeBytes(Path, std::vector<uint8_t>(Full.begin(), Full.begin() + Cut));

    AppendJournal J;
    std::string Error;
    ASSERT_TRUE(J.open(Path, &Error)) << "cut=" << Cut << ": " << Error;

    // Exactly the records whose encoding ends at or before the cut
    // survive; the torn one vanishes without a half-record.
    size_t Complete = 0;
    while (Complete + 1 < Boundaries.size() &&
           Boundaries[Complete + 1] <= Cut)
      ++Complete;
    ASSERT_EQ(Complete, J.records().size()) << "cut=" << Cut;
    for (size_t I = 0; I != Complete; ++I)
      EXPECT_EQ(Records[I], J.records()[I]) << "cut=" << Cut;

    bool AtBoundary = Cut == Boundaries[Complete];
    EXPECT_EQ(!AtBoundary, J.stats().RecoveredTail) << "cut=" << Cut;
    EXPECT_EQ(AtBoundary ? 0 : Cut - Boundaries[Complete],
              J.stats().TornBytes)
        << "cut=" << Cut;
    J.close();

    // Salvage is physical: the file was truncated back to the last good
    // boundary, so the next open sees a pristine journal.
    EXPECT_EQ(Boundaries[Complete], std::filesystem::file_size(Path))
        << "cut=" << Cut;
  }
}

TEST(SentinelJournalTest, ChecksumCorruptionDropsTailAndAppendsResume) {
  std::string Path = freshPath("corrupt");
  std::vector<std::string> Records{"keep.cfg", "corrupt.cfg", "lost.cfg"};
  std::vector<size_t> Boundaries = buildJournal(Path, Records);
  std::vector<uint8_t> Full = readBytes(Path);

  // Flip one payload byte of the second record: its checksum no longer
  // matches, so the scan must stop there — keeping record one, dropping
  // the corrupted record *and* the intact one after it (a trusted tail
  // past a corrupt record would reorder history).
  std::vector<uint8_t> Bad = Full;
  Bad[Boundaries[1] + 4] ^= 0x40;
  writeBytes(Path, Bad);

  AppendJournal J;
  std::string Error;
  ASSERT_TRUE(J.open(Path, &Error)) << Error;
  ASSERT_EQ(1u, J.records().size());
  EXPECT_EQ("keep.cfg", J.records()[0]);
  EXPECT_TRUE(J.stats().RecoveredTail);

  // The journal stays writable after salvage: appends land at the
  // truncated boundary and a reopen sees the repaired history.
  ASSERT_TRUE(J.append("resumed.cfg", &Error)) << Error;
  J.close();

  AppendJournal Again;
  ASSERT_TRUE(Again.open(Path, &Error)) << Error;
  EXPECT_EQ((std::vector<std::string>{"keep.cfg", "resumed.cfg"}),
            Again.records());
  EXPECT_FALSE(Again.stats().RecoveredTail);
}

TEST(SentinelJournalTest, TornHeaderRecoversToFreshJournal) {
  std::string Path = freshPath("torn_header");
  // A kill during the very first open can leave fewer than HeaderBytes
  // on disk; that is torn state, not a legacy checkpoint.
  writeBytes(Path, {'B', 'A', 'L', 'N', 'J'});

  AppendJournal J;
  std::string Error;
  ASSERT_TRUE(J.open(Path, &Error)) << Error;
  EXPECT_TRUE(J.records().empty());
  EXPECT_TRUE(J.stats().RecoveredTail);
  ASSERT_TRUE(J.append("after.cfg", &Error)) << Error;
  J.close();

  AppendJournal Again;
  ASSERT_TRUE(Again.open(Path, &Error)) << Error;
  EXPECT_EQ((std::vector<std::string>{"after.cfg"}), Again.records());
}

TEST(SentinelJournalTest, LegacyLineCheckpointMigratesInPlace) {
  std::string Path = freshPath("legacy");
  {
    // A pre-sentinel `align_tool --checkpoint` file: one program per
    // line, no magic, possibly missing the final newline.
    std::ofstream Out(Path, std::ios::binary);
    Out << "old1.cfg\nold2.cfg\n\nold3.cfg";
  }

  AppendJournal J;
  std::string Error;
  ASSERT_TRUE(J.open(Path, &Error)) << Error;
  EXPECT_TRUE(J.stats().MigratedLegacy);
  // Blank lines were never resume entries; migration drops them.
  EXPECT_EQ((std::vector<std::string>{"old1.cfg", "old2.cfg", "old3.cfg"}),
            J.records());
  ASSERT_TRUE(J.append("new.cfg", &Error)) << Error;
  J.close();

  // The file is journal-format now: magic on disk, no re-migration.
  std::vector<uint8_t> Bytes = readBytes(Path);
  ASSERT_GE(Bytes.size(), sizeof(AppendJournal::Magic));
  EXPECT_EQ(0, std::memcmp(Bytes.data(), AppendJournal::Magic,
                           sizeof(AppendJournal::Magic)));
  AppendJournal Again;
  ASSERT_TRUE(Again.open(Path, &Error)) << Error;
  EXPECT_FALSE(Again.stats().MigratedLegacy);
  EXPECT_EQ(4u, Again.records().size());
  EXPECT_EQ("new.cfg", Again.records().back());
}

TEST(SentinelJournalTest, UnknownFormatVersionIsRefusedNotClobbered) {
  std::string Path = freshPath("version");
  buildJournal(Path, {"future.cfg"});
  std::vector<uint8_t> Bytes = readBytes(Path);
  Bytes[8] = AppendJournal::FormatVersion + 1; // little-endian version lo.
  writeBytes(Path, Bytes);

  AppendJournal J;
  std::string Error;
  EXPECT_FALSE(J.open(Path, &Error));
  EXPECT_FALSE(J.isOpen());
  EXPECT_NE(std::string::npos, Error.find("version")) << Error;
  // Refusal must leave the file byte-identical: a newer tool's journal
  // is data, not salvage fodder.
  EXPECT_EQ(Bytes, readBytes(Path));
}

TEST(SentinelJournalTest, InjectedAppendFaultRollsBack) {
  std::string Path = freshPath("fault");
  AppendJournal J;
  std::string Error;
  ASSERT_TRUE(J.open(Path, &Error)) << Error;
  ASSERT_TRUE(J.append("good.cfg", &Error)) << Error;

  {
    FaultInjector::ScopedFault Fault(FaultSite::JournalAppend,
                                     FaultSpec::once());
    std::string FaultError;
    EXPECT_FALSE(J.append("doomed.cfg", &FaultError));
    EXPECT_NE(std::string::npos, FaultError.find("journal.append"))
        << FaultError;
  }
  EXPECT_EQ(1u, J.stats().AppendFailures);

  // "False means never written": the failed record is absent in memory,
  // the next append lands cleanly, and a reopen confirms the on-disk
  // tail was rolled back rather than left torn.
  EXPECT_EQ((std::vector<std::string>{"good.cfg"}), J.records());
  ASSERT_TRUE(J.append("after.cfg", &Error)) << Error;
  J.close();

  AppendJournal Again;
  ASSERT_TRUE(Again.open(Path, &Error)) << Error;
  EXPECT_EQ((std::vector<std::string>{"good.cfg", "after.cfg"}),
            Again.records());
  EXPECT_FALSE(Again.stats().RecoveredTail);
}

TEST(SentinelJournalTest, ChecksumIsStableAndPositionSensitive) {
  // The checksum is part of the on-disk contract: pin one value so a
  // refactor that silently changes it (orphaning every journal in the
  // wild) fails loudly, and check basic separation.
  const char Data[] = "checkpoint-record";
  uint64_t A = journalChecksum(Data, sizeof(Data) - 1);
  EXPECT_EQ(A, journalChecksum(Data, sizeof(Data) - 1));
  EXPECT_NE(A, journalChecksum(Data, sizeof(Data) - 2));
  EXPECT_NE(A, journalChecksum("checkpoint-recorD", sizeof(Data) - 1));
  EXPECT_NE(0u, A);
}
