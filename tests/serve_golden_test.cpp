//===- tests/serve_golden_test.cpp - pinned wire-format round trips -------===//
//
// The serve wire format is a compatibility contract: the exact request
// and response bytes for a ping, an align, and a bumped-version frame
// are committed under examples/data/serve_* and replayed here against a
// live server. Any codec change that silently reshapes the wire — a
// reordered field, a new header byte, a changed error code — breaks the
// byte comparison and must be made deliberately, by regenerating the
// corpus with BALIGN_REGEN_GOLDEN=1 and committing the diff.
//
//===--------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Client.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace balign;

namespace {

struct IgnoreSigpipe {
  IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

/// A fixed, hand-written CFG so the align golden does not depend on the
/// workload generator's internals.
constexpr const char *GoldenCfg = R"(program golden
proc tokenize {
  entry:  size 4 jump -> header
  header: size 2 cond -> fill scan
  fill:   size 8 jump -> scan
  scan:   size 3 cond -> header done
  done:   size 2 ret
}
)";

bool regenerating() {
  const char *Env = std::getenv("BALIGN_REGEN_GOLDEN");
  return Env && *Env && std::string(Env) != "0";
}

std::string goldenPath(const std::string &Name) {
  return std::string(BALIGN_DATA_DIR) + "/" + Name;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open golden file " << Path
                         << " (regenerate with BALIGN_REGEN_GOLDEN=1)";
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.good()) << "cannot write golden file " << Path;
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// The pinned request frames. Byte changes here are protocol changes.
std::string goldenPingRequest() {
  return encodeFrame(makeFrame(FrameType::Ping, "golden"));
}

std::string goldenAlignRequest() {
  AlignRequest Req;
  Req.Seed = 7;
  Req.Budget = 2000;
  Req.CfgText = GoldenCfg;
  return encodeFrame(makeFrame(FrameType::Align, encodeAlignRequest(Req)));
}

/// A ping frame whose version byte is bumped past ServeProtocolVersion:
/// the canary that a version-2 peer is rejected loudly, not half-read.
std::string goldenBadVersionRequest() {
  std::string Wire = goldenPingRequest();
  Wire[FrameHeaderBytes + 2] =
      static_cast<char>(ServeProtocolVersion + 1);
  return Wire;
}

/// Replays raw request bytes against a fresh single-threaded server and
/// returns the raw response bytes (re-encoded from the response frame),
/// plus how the connection ended.
std::string replay(const std::string &RequestBytes,
                   AlignServer::ConnectionEnd &End) {
  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  AlignServer Server(Base, Config);

  int Fds[2];
  EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  std::thread ServerThread([&Server, &End, Fd = Fds[1]] {
    End = Server.serveConnection(Fd, Fd);
    ::shutdown(Fd, SHUT_RDWR);
  });

  std::string ResponseBytes;
  EXPECT_TRUE(writeFull(Fds[0], RequestBytes.data(), RequestBytes.size()));
  ::shutdown(Fds[0], SHUT_WR); // One request, then EOF.
  Frame Response;
  FrameError Code = FrameError::None;
  std::string Message;
  if (readFrame(Fds[0], Response, Code, Message) == ReadStatus::Ok)
    ResponseBytes = encodeFrame(Response);
  ServerThread.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
  return ResponseBytes;
}

struct GoldenCase {
  const char *Name; ///< File stem under examples/data.
  std::string RequestBytes;
  AlignServer::ConnectionEnd ExpectedEnd;
};

std::vector<GoldenCase> goldenCases() {
  return {
      {"serve_ping", goldenPingRequest(), AlignServer::ConnectionEnd::Eof},
      {"serve_align", goldenAlignRequest(),
       AlignServer::ConnectionEnd::Eof},
      {"serve_badversion", goldenBadVersionRequest(),
       AlignServer::ConnectionEnd::ProtocolError},
  };
}

} // namespace

TEST(ServeGoldenTest, VersionByteIsPinned) {
  // Bumping the protocol version invalidates every committed golden
  // frame; this assertion makes that a loud, deliberate edit here too.
  EXPECT_EQ(1, ServeProtocolVersion);
}

TEST(ServeGoldenTest, CorpusRoundTripsByteForByte) {
  for (const GoldenCase &Case : goldenCases()) {
    SCOPED_TRACE(Case.Name);
    AlignServer::ConnectionEnd End = AlignServer::ConnectionEnd::Eof;
    std::string ResponseBytes = replay(Case.RequestBytes, End);
    ASSERT_FALSE(ResponseBytes.empty());
    EXPECT_EQ(Case.ExpectedEnd, End);

    if (regenerating()) {
      writeFile(goldenPath(std::string(Case.Name) + ".req"),
                Case.RequestBytes);
      writeFile(goldenPath(std::string(Case.Name) + ".resp"),
                ResponseBytes);
      continue;
    }
    EXPECT_EQ(readFile(goldenPath(std::string(Case.Name) + ".req")),
              Case.RequestBytes)
        << "request bytes drifted from the committed corpus";
    EXPECT_EQ(readFile(goldenPath(std::string(Case.Name) + ".resp")),
              ResponseBytes)
        << "response bytes drifted from the committed corpus";
  }
}

TEST(ServeGoldenTest, CommittedRequestsStillParse) {
  if (regenerating())
    GTEST_SKIP() << "regenerating corpus";
  // The committed .req files — not the freshly encoded ones — must
  // replay cleanly: this is what catches a decoder change that rejects
  // yesterday's valid traffic.
  for (const GoldenCase &Case : goldenCases()) {
    SCOPED_TRACE(Case.Name);
    std::string Committed =
        readFile(goldenPath(std::string(Case.Name) + ".req"));
    ASSERT_FALSE(Committed.empty());
    AlignServer::ConnectionEnd End = AlignServer::ConnectionEnd::Eof;
    std::string ResponseBytes = replay(Committed, End);
    ASSERT_FALSE(ResponseBytes.empty());
    EXPECT_EQ(Case.ExpectedEnd, End);
    EXPECT_EQ(readFile(goldenPath(std::string(Case.Name) + ".resp")),
              ResponseBytes);
  }
}

TEST(ServeGoldenTest, BumpedVersionIsRejectedLoudly) {
  AlignServer::ConnectionEnd End = AlignServer::ConnectionEnd::Eof;
  std::string ResponseBytes = replay(goldenBadVersionRequest(), End);
  EXPECT_EQ(AlignServer::ConnectionEnd::ProtocolError, End);

  // Decode the response we got back: a structured BadVersion error
  // naming both versions, not a hang or a silent close.
  ASSERT_GE(ResponseBytes.size(), FrameHeaderBytes + 4u);
  Frame Response;
  Response.Type = FrameType::Error;
  Response.Body = ResponseBytes.substr(FrameHeaderBytes + 4);
  ASSERT_EQ(static_cast<char>(FrameType::Error),
            ResponseBytes[FrameHeaderBytes + 3]);
  FrameError Code = FrameError::None;
  std::string Message;
  ASSERT_TRUE(decodeErrorFrame(Response, Code, Message));
  EXPECT_EQ(FrameError::BadVersion, Code);
  EXPECT_NE(std::string::npos,
            Message.find(std::to_string(ServeProtocolVersion + 1)));
}
