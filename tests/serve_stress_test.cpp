//===- tests/serve_stress_test.cpp - concurrent byte-identity stress ------===//
//
// The balign-serve determinism contract under load: N concurrent
// clients submit a shuffled shared corpus to one server at pool sizes
// {1, 2, 8}; every response must be byte-identical to what one-shot
// align_tool prints for the same (CFG, seed, budget) — computed here
// through the very renderAlignmentReport/synthesizeProfile functions
// the CLI uses — and the shared cache's stats must stay consistent
// (hits + misses == profiled-procedure lookups, no lookup lost or
// double-counted across racing workers).
//
//===--------------------------------------------------------------------===//

#include "serve/Server.h"

#include "cache/Store.h"
#include "ir/TextFormat.h"
#include "serve/Client.h"
#include "serve/Oneshot.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <csignal>
#include <memory>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace balign;

namespace {

struct IgnoreSigpipe {
  IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

constexpr uint64_t ProfileBudget = 1500;

/// One corpus item: a program in wire (text) form plus its request seed
/// and precomputed one-shot expectation.
struct CorpusItem {
  std::string CfgText;
  uint64_t Seed = 0;
  std::string Expected;
  size_t ProfiledProcs = 0;
};

/// Builds a small shared corpus of generated multi-procedure programs
/// and computes, for each, the exact bytes one-shot align_tool would
/// print (pipeline path, no bounds, no dot).
std::vector<CorpusItem> buildCorpus() {
  std::vector<CorpusItem> Corpus;
  for (uint64_t I = 0; I != 6; ++I) {
    Program Prog("stress" + std::to_string(I));
    Rng R(1000 + I * 17);
    GenParams Params;
    Params.TargetBranchSites = 4 + static_cast<unsigned>(I % 3);
    size_t NumProcs = 2 + I % 2;
    for (size_t P = 0; P != NumProcs; ++P)
      Prog.addProcedure(
          generateProcedure("p" + std::to_string(P), Params, R).Proc);

    CorpusItem Item;
    Item.CfgText = printProgram(Prog);
    Item.Seed = 50 + I;

    // The one-shot expectation, via the shared one-shot code itself:
    // parse the printed text back (the server sees text, and
    // synthesizeProfile seeds per parsed procedure), profile, align
    // serial and uncached, render.
    std::string Error;
    std::optional<Program> Parsed = parseProgram(Item.CfgText, &Error);
    EXPECT_TRUE(Parsed.has_value()) << Error;
    ProgramProfile Counts =
        synthesizeProfile(*Parsed, Item.Seed, ProfileBudget);
    for (size_t P = 0; P != Parsed->numProcedures(); ++P)
      if (Counts.Procs[P].executedBranches(Parsed->proc(P)) > 0)
        ++Item.ProfiledProcs;
    AlignmentOptions Options;
    Options.Solver.Seed = Item.Seed;
    Options.ComputeBounds = false;
    ProgramAlignment Result = alignProgram(*Parsed, Counts, Options);
    Item.Expected = renderAlignmentReport(*Parsed, Counts, Result,
                                          /*ComputeBounds=*/false,
                                          /*EmitDot=*/false);
    Corpus.push_back(std::move(Item));
  }
  return Corpus;
}

AlignRequest requestFor(const CorpusItem &Item) {
  AlignRequest Req;
  Req.Seed = Item.Seed;
  Req.Budget = ProfileBudget;
  Req.CfgText = Item.CfgText;
  return Req;
}

/// One client connection bound to a server-side connection thread.
struct Connection {
  int Fds[2] = {-1, -1};
  std::thread Server;
  ServeClient Client;

  Connection(AlignServer &S) {
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
    Server = std::thread([&S, Fd = Fds[1]] { S.serveConnection(Fd, Fd); });
    Client.wrap(Fds[0], Fds[0]);
  }
  ~Connection() {
    Client.close();
    ::close(Fds[0]);
    Server.join();
    ::close(Fds[1]);
  }
};

} // namespace

TEST(ServeStressTest, SerialCacheStatsAreExact) {
  std::vector<CorpusItem> Corpus = buildCorpus();
  size_t ProfiledTotal = 0;
  for (const CorpusItem &Item : Corpus)
    ProfiledTotal += Item.ProfiledProcs;
  ASSERT_GT(ProfiledTotal, 0u);

  AlignmentOptions Base;
  Base.Cache = CacheMode::Memory;
  AlignmentCache Cache;
  Base.CacheImpl = &Cache;
  ServeConfig Config;
  Config.Threads = 1;
  AlignServer Server(Base, Config);

  Connection Conn(Server);
  // Pass 1, cold: every profiled procedure misses then stores.
  for (const CorpusItem &Item : Corpus) {
    std::string Report, Error;
    ASSERT_TRUE(Conn.Client.align(requestFor(Item), Report, &Error))
        << Error;
    EXPECT_EQ(Item.Expected, Report);
  }
  CacheStats Cold = Cache.stats();
  EXPECT_EQ(0u, Cold.Hits);
  EXPECT_EQ(ProfiledTotal, Cold.Misses);
  EXPECT_EQ(ProfiledTotal, Cold.Stores);

  // Pass 2, warm: byte-identical responses served entirely from cache.
  for (const CorpusItem &Item : Corpus) {
    std::string Report, Error;
    ASSERT_TRUE(Conn.Client.align(requestFor(Item), Report, &Error))
        << Error;
    EXPECT_EQ(Item.Expected, Report);
  }
  CacheStats Warm = Cache.stats();
  EXPECT_EQ(ProfiledTotal, Warm.Hits);
  EXPECT_EQ(ProfiledTotal, Warm.Misses);
}

TEST(ServeStressTest, ConcurrentClientsGetOneShotBytesAtEveryPoolSize) {
  std::vector<CorpusItem> Corpus = buildCorpus();
  size_t ProfiledTotal = 0;
  for (const CorpusItem &Item : Corpus)
    ProfiledTotal += Item.ProfiledProcs;

  for (unsigned PoolThreads : {1u, 2u, 8u}) {
    AlignmentOptions Base;
    Base.Cache = CacheMode::Memory;
    AlignmentCache Cache;
    Base.CacheImpl = &Cache;
    ServeConfig Config;
    Config.Threads = PoolThreads;
    AlignServer Server(Base, Config);

    constexpr size_t NumClients = 4;
    std::vector<std::string> Failures(NumClients);
    {
      std::vector<std::unique_ptr<Connection>> Conns;
      for (size_t C = 0; C != NumClients; ++C)
        Conns.push_back(std::make_unique<Connection>(Server));
      std::vector<std::thread> Clients;
      for (size_t C = 0; C != NumClients; ++C) {
        Clients.emplace_back([&, C] {
          // Each client walks the shared corpus in a different rotation
          // (a deterministic shuffle), so the same program is in flight
          // from several clients at once.
          for (size_t I = 0; I != Corpus.size(); ++I) {
            const CorpusItem &Item = Corpus[(I + C) % Corpus.size()];
            std::string Report, Error;
            if (!Conns[C]->Client.align(requestFor(Item), Report,
                                        &Error)) {
              Failures[C] = "client " + std::to_string(C) +
                            " transport: " + Error;
              return;
            }
            if (Report != Item.Expected) {
              Failures[C] = "client " + std::to_string(C) +
                            " got different bytes for seed " +
                            std::to_string(Item.Seed);
              return;
            }
          }
        });
      }
      for (std::thread &T : Clients)
        T.join();
    }
    for (const std::string &F : Failures)
      EXPECT_TRUE(F.empty()) << F << " (pool=" << PoolThreads << ")";

    // Shared-cache consistency: every profiled-procedure lookup is
    // either a hit or a miss — nothing lost or double-counted across
    // racing workers. (The hit/miss *split* is scheduling-dependent;
    // the sum is not.)
    CacheStats Stats = Cache.stats();
    EXPECT_EQ(NumClients * ProfiledTotal, Stats.Hits + Stats.Misses)
        << "pool=" << PoolThreads;
    EXPECT_EQ(NumClients * Corpus.size(),
              Server.metrics().counter("serve.requests.align"))
        << "pool=" << PoolThreads;
    EXPECT_EQ(NumClients * Corpus.size(),
              Server.metrics().counter("serve.responses.ok"))
        << "pool=" << PoolThreads;
  }
}

TEST(ServeStressTest, AdmissionGateRejectsDeterministically) {
  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  Config.QueueBudget = 2;
  AlignServer Server(Base, Config);

  // Pre-saturate the public gate — the deterministic stand-in for two
  // align requests genuinely in flight.
  ASSERT_TRUE(Server.gate().tryAdmit());
  ASSERT_TRUE(Server.gate().tryAdmit());
  ASSERT_FALSE(Server.gate().tryAdmit());
  Server.gate().release();
  ASSERT_TRUE(Server.gate().tryAdmit());
  EXPECT_EQ(2u, Server.gate().highWater());

  // With the budget held, an align request is rejected with a
  // structured frame; after release it succeeds.
  Connection Conn(Server);
  std::vector<CorpusItem> Corpus = buildCorpus();
  Frame Response;
  std::string Error;
  ASSERT_TRUE(Conn.Client.call(
      makeFrame(FrameType::Align, encodeAlignRequest(requestFor(Corpus[0]))),
      Response, &Error))
      << Error;
  ASSERT_EQ(FrameType::Error, Response.Type);
  FrameError Code = FrameError::None;
  std::string Message;
  ASSERT_TRUE(decodeErrorFrame(Response, Code, Message));
  EXPECT_EQ(FrameError::Rejected, Code);
  EXPECT_EQ(1u, Server.metrics().counter("serve.rejected"));

  Server.gate().release();
  Server.gate().release();
  std::string Report;
  ASSERT_TRUE(Conn.Client.align(requestFor(Corpus[0]), Report, &Error))
      << Error;
  EXPECT_EQ(Corpus[0].Expected, Report);
}
