//===- tests/objective_test.cpp - ObjectiveFn oracle tests ----------------===//
//
// Brute-force validation of the objective subsystem: every layout of
// small random CFGs is scored by ExtTspObjective and compared against
// an independent naive reimplementation of the Ext-TSP definition;
// FallthroughObjective must reproduce -evaluateLayout exactly; and
// shrinking the windows to one byte must degenerate the Ext-TSP score
// to the weighted-adjacency (fall-through) count, the algebraic bridge
// between the two objectives that DESIGN.md sketches.
//
//===--------------------------------------------------------------------===//

#include "objective/Objective.h"

#include "objective/Penalty.h"
#include "profile/Trace.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

using namespace balign;

namespace {

struct SmallCase {
  Procedure Proc{"small"};
  ProcedureProfile Profile;
};

/// Collects generated procedures with at most \p MaxBlocks blocks (so
/// full layout enumeration stays cheap), each with a seeded profile.
std::vector<SmallCase> smallCases(size_t Want, size_t MaxBlocks = 8) {
  std::vector<SmallCase> Cases;
  for (uint64_t Seed = 1; Cases.size() < Want && Seed < 500; ++Seed) {
    Rng R(Seed);
    GenParams Params;
    Params.TargetBranchSites = 2;
    Params.MaxDepth = 2;
    Procedure Proc = generateProcedure("s" + std::to_string(Seed), Params, R)
                         .Proc;
    if (Proc.numBlocks() < 3 || Proc.numBlocks() > MaxBlocks)
      continue;
    Rng TraceRng(Seed * 977);
    TraceGenOptions Options;
    Options.BranchBudget = 400;
    SmallCase C;
    C.Profile = collectProfile(
        Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                            Options));
    C.Proc = std::move(Proc);
    Cases.push_back(std::move(C));
  }
  return Cases;
}

/// Independent Ext-TSP reimplementation, structured nothing like the
/// production one: addresses are recomputed from scratch per query by
/// walking the order, and every CFG edge is visited from the edge side
/// rather than the layout side.
double naiveExtTsp(const Procedure &Proc, const ProcedureProfile &Profile,
                   const std::vector<BlockId> &Order,
                   const MachineModel &Model) {
  auto addressOf = [&](BlockId Wanted) -> int64_t {
    int64_t Addr = 0;
    for (BlockId Id : Order) {
      if (Id == Wanted)
        return Addr;
      Addr += static_cast<int64_t>(Proc.block(Id).InstrCount) *
              static_cast<int64_t>(BytesPerInstr);
    }
    return -1;
  };
  double Total = 0.0;
  for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
    int64_t Src = addressOf(B);
    if (Src < 0)
      continue;
    int64_t SrcEnd = Src + static_cast<int64_t>(Proc.block(B).InstrCount) *
                               static_cast<int64_t>(BytesPerInstr);
    const std::vector<BlockId> &Succs = Proc.successors(B);
    for (size_t S = 0; S != Succs.size(); ++S) {
      int64_t Dst = addressOf(Succs[S]);
      if (Dst < 0)
        continue;
      double Count = static_cast<double>(Profile.EdgeCounts[B][S]);
      if (Count == 0.0)
        continue;
      if (Dst == SrcEnd) {
        Total += Count;
      } else if (Dst > SrcEnd) {
        double Dist = static_cast<double>(Dst - SrcEnd);
        if (Dist < static_cast<double>(Model.ExtTspForwardWindow))
          Total += Count * Model.ExtTspForwardWeight *
                   (1.0 - Dist /
                              static_cast<double>(Model.ExtTspForwardWindow));
      } else {
        double Dist = static_cast<double>(SrcEnd - Dst);
        if (Dist <= static_cast<double>(Model.ExtTspBackwardWindow))
          Total += Count * Model.ExtTspBackwardWeight *
                   (1.0 - Dist /
                              static_cast<double>(Model.ExtTspBackwardWindow));
      }
    }
  }
  return Total;
}

/// Sum of edge counts over layout-adjacent (fall-through) pairs — what
/// the Ext-TSP score must collapse to when both windows shrink to one
/// byte (no block is shorter than BytesPerInstr, so nothing but exact
/// adjacency can ever land inside such a window).
double weightedAdjacency(const Procedure &Proc,
                         const ProcedureProfile &Profile,
                         const std::vector<BlockId> &Order) {
  double Total = 0.0;
  for (size_t P = 0; P + 1 < Order.size(); ++P) {
    const std::vector<BlockId> &Succs = Proc.successors(Order[P]);
    for (size_t S = 0; S != Succs.size(); ++S)
      if (Succs[S] == Order[P + 1])
        Total += static_cast<double>(Profile.EdgeCounts[Order[P]][S]);
  }
  return Total;
}

/// Calls \p Fn with every permutation of [0, N) that keeps block 0
/// (the entry) first.
template <typename Fn>
void forEachEntryFixedLayout(size_t N, Fn &&Body) {
  std::vector<BlockId> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  do {
    Body(Order);
  } while (std::next_permutation(Order.begin() + 1, Order.end()));
}

Layout layoutOf(const std::vector<BlockId> &Order) {
  Layout L;
  L.Order = Order;
  return L;
}

} // namespace

//===--------------------------------------------------------------------===//
// Brute-force oracle: every layout, production vs naive
//===--------------------------------------------------------------------===//

TEST(ObjectiveTest, ExtTspMatchesNaiveOracleOnAllLayouts) {
  std::vector<SmallCase> Cases = smallCases(6);
  ASSERT_GE(Cases.size(), 4u);
  MachineModel Model = MachineModel::alpha21164();
  // Small windows so both the in-window and out-of-window arms of the
  // scoring function are exercised by these tiny procedures.
  Model.ExtTspForwardWindow = 64;
  Model.ExtTspBackwardWindow = 40;
  ExtTspObjective Obj(Model);
  size_t Checked = 0;
  for (const SmallCase &C : Cases) {
    forEachEntryFixedLayout(C.Proc.numBlocks(), [&](
                                const std::vector<BlockId> &Order) {
      double Got = Obj.scoreLayout(C.Proc, C.Profile, layoutOf(Order));
      double Want = naiveExtTsp(C.Proc, C.Profile, Order, Model);
      ASSERT_DOUBLE_EQ(Got, Want) << C.Proc.getName();
      ++Checked;
    });
  }
  EXPECT_GT(Checked, 100u);
}

TEST(ObjectiveTest, ExtTspDefaultWindowsMatchNaiveOracle) {
  std::vector<SmallCase> Cases = smallCases(4);
  ASSERT_GE(Cases.size(), 3u);
  MachineModel Model = MachineModel::alpha21164();
  ExtTspObjective Obj(Model);
  for (const SmallCase &C : Cases)
    forEachEntryFixedLayout(C.Proc.numBlocks(), [&](
                                const std::vector<BlockId> &Order) {
      ASSERT_DOUBLE_EQ(Obj.scoreLayout(C.Proc, C.Profile, layoutOf(Order)),
                       naiveExtTsp(C.Proc, C.Profile, Order, Model));
    });
}

//===--------------------------------------------------------------------===//
// FallthroughObjective is exactly -evaluateLayout
//===--------------------------------------------------------------------===//

TEST(ObjectiveTest, FallthroughScoreIsNegatedPaperPenalty) {
  std::vector<SmallCase> Cases = smallCases(5);
  ASSERT_GE(Cases.size(), 4u);
  MachineModel Model = MachineModel::alpha21164();
  FallthroughObjective Obj(Model);
  for (const SmallCase &C : Cases)
    forEachEntryFixedLayout(C.Proc.numBlocks(), [&](
                                const std::vector<BlockId> &Order) {
      Layout L = layoutOf(Order);
      int64_t Penalty =
          evaluateLayout(C.Proc, L, Model, C.Profile, C.Profile);
      ASSERT_DOUBLE_EQ(Obj.scoreLayout(C.Proc, C.Profile, L),
                       -static_cast<double>(Penalty));
    });
}

//===--------------------------------------------------------------------===//
// One-byte windows degenerate Ext-TSP to weighted adjacency
//===--------------------------------------------------------------------===//

TEST(ObjectiveTest, UnitWindowDegeneratesToWeightedAdjacency) {
  std::vector<SmallCase> Cases = smallCases(5);
  ASSERT_GE(Cases.size(), 4u);
  // The degeneracy holds for *any* weights: with one-byte windows the
  // weighted terms can never fire (the nearest non-adjacent placement
  // is BytesPerInstr away), leaving only the count of fall-through
  // executions — i.e. the fall-through objective's maximization target.
  for (auto [Fwd, Bwd] : {std::pair<double, double>{1.0, 0.0},
                          std::pair<double, double>{0.1, 0.1},
                          std::pair<double, double>{7.5, 3.25}}) {
    MachineModel Model = MachineModel::alpha21164();
    Model.ExtTspForwardWindow = 1;
    Model.ExtTspBackwardWindow = 1;
    Model.ExtTspForwardWeight = Fwd;
    Model.ExtTspBackwardWeight = Bwd;
    ExtTspObjective Obj(Model);
    for (const SmallCase &C : Cases)
      forEachEntryFixedLayout(C.Proc.numBlocks(), [&](
                                  const std::vector<BlockId> &Order) {
        ASSERT_DOUBLE_EQ(Obj.scoreLayout(C.Proc, C.Profile, layoutOf(Order)),
                         weightedAdjacency(C.Proc, C.Profile, Order));
      });
  }
}

//===--------------------------------------------------------------------===//
// Partial-sequence scoring: partitions under-approximate the whole
//===--------------------------------------------------------------------===//

TEST(ObjectiveTest, ChainPartitionSumsNeverExceedFullLayoutScore) {
  std::vector<SmallCase> Cases = smallCases(5);
  ASSERT_GE(Cases.size(), 4u);
  MachineModel Model = MachineModel::alpha21164();
  ExtTspObjective Obj(Model);
  for (const SmallCase &C : Cases) {
    size_t N = C.Proc.numBlocks();
    std::vector<BlockId> Order(N);
    std::iota(Order.begin(), Order.end(), 0);
    double Full = Obj.scoreSequence(C.Proc, C.Profile, Order);
    for (size_t Cut = 1; Cut < N; ++Cut) {
      std::vector<BlockId> Head(Order.begin(), Order.begin() + Cut);
      std::vector<BlockId> Tail(Order.begin() + Cut, Order.end());
      double Split = Obj.scoreSequence(C.Proc, C.Profile, Head) +
                     Obj.scoreSequence(C.Proc, C.Profile, Tail);
      // Splitting can only drop cross-partition edge credit; each
      // chain's internal credit is positionally identical (scores
      // depend on intra-sequence distances only).
      EXPECT_LE(Split, Full + 1e-9) << C.Proc.getName() << " cut " << Cut;
    }
  }
}

//===--------------------------------------------------------------------===//
// Factory and naming
//===--------------------------------------------------------------------===//

TEST(ObjectiveTest, FactoryNamesAndParsingRoundTrip) {
  MachineModel Model = MachineModel::alpha21164();
  std::unique_ptr<ObjectiveFn> Fall =
      makeObjective(ObjectiveKind::Fallthrough, Model);
  std::unique_ptr<ObjectiveFn> Ext =
      makeObjective(ObjectiveKind::ExtTsp, Model);
  EXPECT_EQ(Fall->name(), "fallthrough");
  EXPECT_EQ(Ext->name(), "exttsp");
  EXPECT_STREQ(objectiveKindName(ObjectiveKind::Fallthrough), "fallthrough");
  EXPECT_STREQ(objectiveKindName(ObjectiveKind::ExtTsp), "exttsp");

  ObjectiveKind Kind = ObjectiveKind::Fallthrough;
  EXPECT_TRUE(parseObjectiveKind("exttsp", Kind));
  EXPECT_EQ(Kind, ObjectiveKind::ExtTsp);
  EXPECT_TRUE(parseObjectiveKind("fallthrough", Kind));
  EXPECT_EQ(Kind, ObjectiveKind::Fallthrough);
  EXPECT_FALSE(parseObjectiveKind("tsp", Kind));
  EXPECT_FALSE(parseObjectiveKind("", Kind));
  EXPECT_EQ(Kind, ObjectiveKind::Fallthrough); // Untouched on failure.
}
