//===- tests/tsp_bounds_test.cpp - Held-Karp and AP bound tests --------------===//

#include "support/Random.h"
#include "tsp/Assignment.h"
#include "tsp/Exact.h"
#include "tsp/HeldKarp.h"
#include "tsp/Instance.h"
#include "tsp/IteratedOpt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>

using namespace balign;

namespace {

DirectedTsp randomInstance(size_t N, uint64_t Seed, int64_t MaxCost = 100) {
  Rng R(Seed);
  DirectedTsp Dtsp(N);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        Dtsp.setCost(I, J, static_cast<int64_t>(R.nextBelow(MaxCost + 1)));
  return Dtsp;
}

/// Random symmetric-consistent directed instance (c(i,j) == c(j,i)).
DirectedTsp randomSymmetricInstance(size_t N, uint64_t Seed,
                                    int64_t MaxCost = 100) {
  Rng R(Seed);
  DirectedTsp Dtsp(N);
  for (City I = 0; I != N; ++I)
    for (City J = I + 1; J != N; ++J) {
      int64_t C = static_cast<int64_t>(R.nextBelow(MaxCost + 1));
      Dtsp.setCost(I, J, C);
      Dtsp.setCost(J, I, C);
    }
  return Dtsp;
}

} // namespace

/// Property sweep: the Held-Karp bound never exceeds the exact optimum
/// and is reasonably tight on small random instances.
class HeldKarpValidity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeldKarpValidity, NeverExceedsOptimum) {
  uint64_t Seed = GetParam();
  size_t N = 4 + Seed % 8; // 4..11 cities.
  DirectedTsp D = randomInstance(N, Seed * 17 + 5);
  int64_t Optimal = solveExactDirected(D);
  double Bound = heldKarpBoundDirected(D, Optimal);
  EXPECT_LE(Bound, static_cast<double>(Optimal) + 1e-6) << "N=" << N;
  // HK should be no weaker than half the optimum on these instances.
  EXPECT_GE(Bound, 0.3 * static_cast<double>(Optimal) - 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeldKarpValidity,
                         ::testing::Range<uint64_t>(1, 21));

TEST(HeldKarpTest, TightOnMetricSymmetricInstances) {
  // On symmetric instances with triangle-inequality-ish structure the HK
  // bound is empirically within a few percent of optimal.
  double WorstGap = 0.0;
  for (uint64_t Seed = 1; Seed != 8; ++Seed) {
    DirectedTsp D = randomSymmetricInstance(10, Seed * 29, 50);
    // Make it metric-ish: c'(i,j) = c(i,j) + 50 reduces relative spread.
    for (City I = 0; I != 10; ++I)
      for (City J = 0; J != 10; ++J)
        if (I != J)
          D.setCost(I, J, D.cost(I, J) + 50);
    int64_t Optimal = solveExactDirected(D);
    double Bound = heldKarpBoundDirected(D, Optimal);
    EXPECT_LE(Bound, static_cast<double>(Optimal) + 1e-6);
    double Gap = (static_cast<double>(Optimal) - Bound) /
                 static_cast<double>(Optimal);
    WorstGap = std::max(WorstGap, Gap);
  }
  EXPECT_LT(WorstGap, 0.10);
}

TEST(HeldKarpTest, DegenerateSizes) {
  DirectedTsp Two(2);
  Two.setCost(0, 1, 3);
  Two.setCost(1, 0, 9);
  EXPECT_DOUBLE_EQ(heldKarpBoundDirected(Two, 12), 12.0);

  DirectedTsp One(1);
  EXPECT_DOUBLE_EQ(heldKarpBoundDirected(One, 0), 0.0);
}

TEST(HeldKarpTest, SymmetricBoundOnKnownInstance) {
  // A 4-cycle with cheap ring edges (1) and expensive chords (10):
  // optimal tour = 4; the HK bound must land at most 4 and at least the
  // trivial spanning structure.
  SymmetricTsp Sym(4);
  for (City I = 0; I != 4; ++I)
    for (City J = I + 1; J != 4; ++J)
      Sym.setDist(I, J, 10);
  Sym.setDist(0, 1, 1);
  Sym.setDist(1, 2, 1);
  Sym.setDist(2, 3, 1);
  Sym.setDist(3, 0, 1);
  double Bound = heldKarpBoundSymmetric(Sym, 4);
  EXPECT_LE(Bound, 4.0 + 1e-9);
  EXPECT_GE(Bound, 3.9); // HK is exact here (the LP optimum is the tour).
}

/// Property sweep: the AP bound is a valid relaxation.
class AssignmentValidity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssignmentValidity, NeverExceedsOptimum) {
  uint64_t Seed = GetParam();
  size_t N = 3 + Seed % 8;
  DirectedTsp D = randomInstance(N, Seed * 23 + 7);
  AssignmentResult Ap = assignmentBound(D);
  int64_t Optimal = solveExactDirected(D);
  EXPECT_LE(Ap.Cost, Optimal);
  EXPECT_GE(Ap.NumCycles, 1u);
  // Successor must be a fixed-point-free permutation.
  std::vector<bool> Hit(N, false);
  for (City I = 0; I != N; ++I) {
    EXPECT_NE(Ap.Successor[I], I);
    EXPECT_LT(Ap.Successor[I], N);
    EXPECT_FALSE(Hit[Ap.Successor[I]]);
    Hit[Ap.Successor[I]] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentValidity,
                         ::testing::Range<uint64_t>(1, 21));

TEST(AssignmentTest, MatchesBruteForceMinimumCycleCover) {
  // The Hungarian result must equal the brute-force minimum over all
  // fixed-point-free permutations (cycle covers), not just be a bound.
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    size_t N = 3 + Seed % 4; // 3..6 cities.
    DirectedTsp D = randomInstance(N, Seed * 53 + 1);
    AssignmentResult Ap = assignmentBound(D);

    std::vector<City> Perm(N);
    for (City I = 0; I != N; ++I)
      Perm[I] = I;
    int64_t Best = INT64_MAX;
    do {
      bool FixedPointFree = true;
      int64_t Cost = 0;
      for (City I = 0; I != N; ++I) {
        if (Perm[I] == I) {
          FixedPointFree = false;
          break;
        }
        Cost += D.cost(I, Perm[I]);
      }
      if (FixedPointFree)
        Best = std::min(Best, Cost);
    } while (std::next_permutation(Perm.begin(), Perm.end()));
    EXPECT_EQ(Ap.Cost, Best) << "seed " << Seed << " N=" << N;
  }
}

TEST(AssignmentTest, ExactWhenCoverIsOneCycle) {
  // Ring instance: the cheapest cycle cover IS the optimal tour.
  DirectedTsp D(5);
  for (City I = 0; I != 5; ++I)
    for (City J = 0; J != 5; ++J)
      if (I != J)
        D.setCost(I, J, 50);
  for (City I = 0; I != 5; ++I)
    D.setCost(I, (I + 1) % 5, 1);
  AssignmentResult Ap = assignmentBound(D);
  EXPECT_EQ(Ap.Cost, 5);
  EXPECT_EQ(Ap.NumCycles, 1u);
  EXPECT_EQ(Ap.Cost, solveExactDirected(D));
}

TEST(AssignmentTest, DetectsMultiCycleCovers) {
  // Two cheap 2-cycles (0<->1, 2<->3) and expensive everything else:
  // AP picks the two 2-cycles, underestimating the real tour.
  DirectedTsp D(4);
  for (City I = 0; I != 4; ++I)
    for (City J = 0; J != 4; ++J)
      if (I != J)
        D.setCost(I, J, 100);
  D.setCost(0, 1, 1);
  D.setCost(1, 0, 1);
  D.setCost(2, 3, 1);
  D.setCost(3, 2, 1);
  AssignmentResult Ap = assignmentBound(D);
  EXPECT_EQ(Ap.Cost, 4);
  EXPECT_EQ(Ap.NumCycles, 2u);
  EXPECT_LT(Ap.Cost, solveExactDirected(D));
}

TEST(BoundsOrdering, HeldKarpDominatesApOnAlignmentLikeInstances) {
  // The paper's appendix observes HK is much stronger than AP on branch
  // alignment instances; verify HK >= AP on skewed random instances
  // (where the AP bound splinters into many tiny cycles).
  unsigned HkWins = 0, Trials = 0;
  for (uint64_t Seed = 1; Seed != 11; ++Seed) {
    DirectedTsp D = randomInstance(12, Seed * 41, 1000);
    // Give every city one very cheap outgoing arc to mimic hot CFG paths.
    Rng R(Seed);
    for (City I = 0; I != 12; ++I) {
      City J = static_cast<City>((I + 1 + R.nextIndex(11)) % 12);
      if (J != I)
        D.setCost(I, J, 0);
    }
    int64_t Optimal = solveExactDirected(D);
    double Hk = heldKarpBoundDirected(D, Optimal);
    AssignmentResult Ap = assignmentBound(D);
    ++Trials;
    if (Hk >= static_cast<double>(Ap.Cost) - 1e-6)
      ++HkWins;
  }
  EXPECT_GE(HkWins * 10, Trials * 7) << "HK should usually dominate AP";
}
