//===- tests/sim_test.cpp - Cache and pipeline-simulator tests ----------------===//

#include "align/Aligners.h"
#include "align/Penalty.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "sim/ICache.h"
#include "sim/Simulator.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

TEST(ICacheTest, DirectMappedHitsAndConflicts) {
  ICacheConfig Config;
  Config.SizeBytes = 128;
  Config.LineBytes = 32; // 4 lines.
  ICache Cache(Config);
  EXPECT_FALSE(Cache.access(0));   // Cold miss.
  EXPECT_TRUE(Cache.access(4));    // Same line.
  EXPECT_TRUE(Cache.access(31));   // Still same line.
  EXPECT_FALSE(Cache.access(32));  // Next line.
  EXPECT_FALSE(Cache.access(128)); // Conflicts with line 0.
  EXPECT_FALSE(Cache.access(0));   // Evicted: miss again.
  EXPECT_EQ(Cache.misses(), 4u);
  EXPECT_EQ(Cache.hits(), 2u);
  Cache.reset();
  EXPECT_FALSE(Cache.access(4));
}

TEST(ICacheTest, AccessRangeTouchesEveryLine) {
  ICacheConfig Config;
  Config.SizeBytes = 1024;
  Config.LineBytes = 32;
  ICache Cache(Config);
  EXPECT_EQ(Cache.accessRange(16, 64), 3u); // Lines 0,1,2 (straddles).
  EXPECT_EQ(Cache.accessRange(16, 64), 0u); // All warm now.
  EXPECT_EQ(Cache.accessRange(96, 1), 1u);  // Single byte, one line.
}

TEST(ProcedureBaseTest, LineAlignedAndDisjoint) {
  CFGBuilder B("p");
  BlockId J = B.jump(5);
  BlockId R = B.ret(3);
  B.edge(J, R);
  Procedure Proc = B.take();
  ProcedureProfile Zero = ProcedureProfile::zeroed(Proc);
  MachineModel Alpha = MachineModel::alpha21164();
  MaterializedLayout Mat =
      materializeLayout(Proc, Layout::original(Proc), Zero, Alpha);
  std::vector<uint64_t> Bases = assignProcedureBases({Mat, Mat, Mat}, 32);
  ASSERT_EQ(Bases.size(), 3u);
  EXPECT_EQ(Bases[0], 0u);
  for (size_t I = 1; I != 3; ++I) {
    EXPECT_EQ(Bases[I] % 32, 0u);
    EXPECT_GE(Bases[I], Bases[I - 1] + Mat.TotalBytes);
  }
}

namespace {

/// Random program with one procedure, one behavior, one trace.
struct SimCase {
  Program Prog{"sim"};
  ProgramProfile Profile;
  std::vector<ExecutionTrace> Traces;
  MachineModel Alpha = MachineModel::alpha21164();

  explicit SimCase(uint64_t Seed, unsigned Sites = 8,
                   uint64_t Budget = 800) {
    Rng StructureRng(Seed * 7 + 1);
    GenParams Params;
    Params.TargetBranchSites = Sites;
    Params.MultiwayFraction = 0.1;
    GeneratedProcedure Gen = generateProcedure("p0", Params, StructureRng);
    Prog.addProcedure(Gen.Proc);
    Rng TraceRng(Seed * 11 + 2);
    TraceGenOptions Options;
    Options.BranchBudget = Budget;
    Traces.push_back(generateTrace(Prog.proc(0),
                                   BranchBehavior::uniform(Prog.proc(0)),
                                   TraceRng, Options));
    Profile.Procs.push_back(collectProfile(Prog.proc(0), Traces[0]));
  }
};

} // namespace

/// The central simulator invariant: with the cache disabled-equivalent
/// (penalty checked separately), simulated control-penalty cycles on the
/// training trace equal the evaluator's computed penalty.
class SimulatorAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorAgreement, ControlPenaltiesMatchEvaluator) {
  uint64_t Seed = GetParam();
  SimCase C(Seed);
  for (int Which = 0; Which != 3; ++Which) {
    Layout L;
    if (Which == 0) {
      L = Layout::original(C.Prog.proc(0));
    } else if (Which == 1) {
      GreedyAligner G;
      L = G.align(C.Prog.proc(0), C.Profile.Procs[0], C.Alpha);
    } else {
      TspAligner T;
      L = T.align(C.Prog.proc(0), C.Profile.Procs[0], C.Alpha);
    }
    MaterializedLayout Mat =
        materializeLayout(C.Prog.proc(0), L, C.Profile.Procs[0], C.Alpha);
    SimConfig Config;
    SimResult R = simulateProgram(C.Prog, {Mat}, C.Traces, Config);
    uint64_t Evaluated = evaluateLayout(C.Prog.proc(0), L, C.Alpha,
                                        C.Profile.Procs[0],
                                        C.Profile.Procs[0]);
    EXPECT_EQ(R.ControlPenaltyCycles, Evaluated)
        << "seed " << Seed << " layout " << Which;
    // Base cycles = dynamic instructions + executed fixups.
    EXPECT_EQ(R.BaseCycles,
              C.Profile.Procs[0].dynamicInstructions(C.Prog.proc(0)) +
                  R.FixupsExecuted);
    EXPECT_EQ(R.Cycles,
              R.BaseCycles + R.ControlPenaltyCycles + R.CacheMissCycles);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorAgreement,
                         ::testing::Range<uint64_t>(1, 13));

TEST(SimulatorTest, CrossTraceReplayDiffersFromTraining) {
  SimCase Train(5);
  // A second trace over the same program with a different seed.
  Rng TraceRng(999);
  TraceGenOptions Options;
  Options.BranchBudget = 800;
  ExecutionTrace TestTrace = generateTrace(
      Train.Prog.proc(0), BranchBehavior::uniform(Train.Prog.proc(0)),
      TraceRng, Options);
  ProcedureProfile TestProfile =
      collectProfile(Train.Prog.proc(0), TestTrace);

  TspAligner T;
  Layout L = T.align(Train.Prog.proc(0), Train.Profile.Procs[0], Train.Alpha);
  MaterializedLayout Mat = materializeLayout(
      Train.Prog.proc(0), L, Train.Profile.Procs[0], Train.Alpha);
  SimConfig Config;
  SimResult R = simulateProgram(Train.Prog, {Mat}, {TestTrace}, Config);
  // Replaying the testing trace must equal the evaluator in
  // cross-validation mode (Predict = train, Charge = test).
  EXPECT_EQ(R.ControlPenaltyCycles,
            evaluateLayout(Train.Prog.proc(0), L, Train.Alpha,
                           Train.Profile.Procs[0], TestProfile));
}

TEST(SimulatorTest, CacheMissesDependOnLayout) {
  // With a tiny cache, a layout that scatters the hot loop across lines
  // must miss at least as much as the dense TSP layout.
  SimCase C(7, /*Sites=*/10, /*Budget=*/2000);
  TspAligner T;
  Layout Tsp = T.align(C.Prog.proc(0), C.Profile.Procs[0], C.Alpha);
  Layout Original = Layout::original(C.Prog.proc(0));

  SimConfig Config;
  Config.Cache.SizeBytes = 256;
  Config.Cache.LineBytes = 32;
  MaterializedLayout MatTsp =
      materializeLayout(C.Prog.proc(0), Tsp, C.Profile.Procs[0], C.Alpha);
  MaterializedLayout MatOrig = materializeLayout(
      C.Prog.proc(0), Original, C.Profile.Procs[0], C.Alpha);
  SimResult RTsp = simulateProgram(C.Prog, {MatTsp}, C.Traces, Config);
  SimResult ROrig = simulateProgram(C.Prog, {MatOrig}, C.Traces, Config);
  EXPECT_GT(RTsp.CacheAccesses, 0u);
  EXPECT_LE(RTsp.Cycles, ROrig.Cycles)
      << "aligned layout should not run slower overall";
}

TEST(BimodalPredictorTest, LearnsStableDirections) {
  BimodalPredictor P(64);
  // Train a branch at address 0x100 to be taken.
  for (int I = 0; I != 4; ++I)
    P.update(0x100, true);
  EXPECT_TRUE(P.predict(0x100));
  // Two not-taken observations flip a saturated counter back.
  P.update(0x100, false);
  EXPECT_TRUE(P.predict(0x100)); // Still weakly taken.
  P.update(0x100, false);
  P.update(0x100, false);
  EXPECT_FALSE(P.predict(0x100));
}

TEST(BimodalPredictorTest, AliasingCollidesDistantBranches) {
  BimodalPredictor P(16); // 16 entries x 4-byte instrs = 64-byte window.
  P.update(0x0, true);
  P.update(0x0, true);
  // Address 64 bytes away maps to the same counter.
  EXPECT_TRUE(P.predict(0x40));
  // A nearby address does not.
  EXPECT_FALSE(P.predict(0x4));
  P.reset();
  EXPECT_FALSE(P.predict(0x0));
}

TEST(SimulatorTest, BimodalPredictorRunsAndDiffers) {
  SimCase C(11);
  TspAligner T;
  Layout L = T.align(C.Prog.proc(0), C.Profile.Procs[0], C.Alpha);
  MaterializedLayout Mat =
      materializeLayout(C.Prog.proc(0), L, C.Profile.Procs[0], C.Alpha);
  SimConfig Static;
  SimConfig Bimodal;
  Bimodal.Predictor = PredictorKind::Bimodal2Bit;
  SimResult RStatic = simulateProgram(C.Prog, {Mat}, C.Traces, Static);
  SimResult RBimodal = simulateProgram(C.Prog, {Mat}, C.Traces, Bimodal);
  EXPECT_EQ(RStatic.BaseCycles, RBimodal.BaseCycles);
  EXPECT_NE(RStatic.ControlPenaltyCycles, RBimodal.ControlPenaltyCycles);
}

TEST(SimulatorTest, DeletedFallThroughJumpsSaveCyclesAndLines) {
  // Densified materialization (fall-through jumps deleted) must never
  // fetch more lines or execute more instructions than the plain one,
  // and control penalties are unaffected.
  SimCase C(13, /*Sites=*/10, /*Budget=*/2000);
  TspAligner T;
  Layout L = T.align(C.Prog.proc(0), C.Profile.Procs[0], C.Alpha);
  MaterializedLayout Plain =
      materializeLayout(C.Prog.proc(0), L, C.Profile.Procs[0], C.Alpha);
  MaterializeOptions Options;
  Options.DeleteFallThroughJumps = true;
  MaterializedLayout Dense = materializeLayout(
      C.Prog.proc(0), L, C.Profile.Procs[0], C.Alpha, Options);
  EXPECT_LE(Dense.TotalBytes, Plain.TotalBytes);

  SimConfig Config;
  Config.Cache.SizeBytes = 512;
  SimResult RPlain = simulateProgram(C.Prog, {Plain}, C.Traces, Config);
  SimResult RDense = simulateProgram(C.Prog, {Dense}, C.Traces, Config);
  EXPECT_EQ(RDense.ControlPenaltyCycles, RPlain.ControlPenaltyCycles);
  EXPECT_LE(RDense.BaseCycles, RPlain.BaseCycles);
  EXPECT_LE(RDense.Cycles, RPlain.Cycles);
}

TEST(SimulatorTest, BtfntChangesPenalties) {
  SimCase C(9);
  TspAligner T;
  Layout L = T.align(C.Prog.proc(0), C.Profile.Procs[0], C.Alpha);
  MaterializedLayout Mat =
      materializeLayout(C.Prog.proc(0), L, C.Profile.Procs[0], C.Alpha);
  SimConfig Profiled;
  SimConfig Btfnt;
  Btfnt.Predictor = PredictorKind::Btfnt;
  SimResult RProfiled = simulateProgram(C.Prog, {Mat}, C.Traces, Profiled);
  SimResult RBtfnt = simulateProgram(C.Prog, {Mat}, C.Traces, Btfnt);
  // Profile-trained static prediction should beat BTFNT on its own
  // training trace (ties possible on degenerate cases, so allow <=).
  EXPECT_LE(RProfiled.ControlPenaltyCycles, RBtfnt.ControlPenaltyCycles);
}
