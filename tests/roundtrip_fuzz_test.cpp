//===- tests/roundtrip_fuzz_test.cpp - Seeded round-trip fuzzing ---------------===//
//
// Seeded "fuzz-lite": pump randomly generated procedures and profiles
// through the text serializers and back, asserting exact structural
// equality. Catches printer/parser drift for any CFG shape the workload
// generator can produce.
//
//===----------------------------------------------------------------------===//

#include "ir/TextFormat.h"
#include "profile/ProfileIO.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

Program randomProgram(uint64_t Seed) {
  Rng Root(Seed);
  Program Prog("fuzz" + std::to_string(Seed));
  size_t NumProcs = 1 + Root.nextIndex(4);
  for (size_t P = 0; P != NumProcs; ++P) {
    GenParams Params;
    Params.TargetBranchSites = 1 + static_cast<unsigned>(Root.nextIndex(15));
    Params.MultiwayFraction = Root.nextDouble() * 0.2;
    Params.LoopFraction = Root.nextDouble() * 0.6;
    Params.TopTestedLoopFraction = Root.nextDouble();
    Params.ElseFraction = Root.nextDouble();
    Params.EarlyReturnProb = Root.nextDouble() * 0.3;
    Rng ProcRng(Root.next());
    Prog.addProcedure(
        generateProcedure("f" + std::to_string(P), Params, ProcRng).Proc);
  }
  return Prog;
}

} // namespace

class RoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripFuzz, ProgramTextFormat) {
  Program Prog = randomProgram(GetParam());
  std::string Text = printProgram(Prog);
  std::string Error;
  std::optional<Program> Parsed = parseProgram(Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error << "\n" << Text;
  ASSERT_EQ(Parsed->numProcedures(), Prog.numProcedures());
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    const Procedure &A = Prog.proc(P);
    const Procedure &B = Parsed->proc(P);
    ASSERT_EQ(A.numBlocks(), B.numBlocks()) << "proc " << P;
    EXPECT_EQ(A.getName(), B.getName());
    for (BlockId Id = 0; Id != A.numBlocks(); ++Id) {
      EXPECT_EQ(A.block(Id).Kind, B.block(Id).Kind);
      EXPECT_EQ(A.block(Id).InstrCount, B.block(Id).InstrCount);
      EXPECT_EQ(A.successors(Id), B.successors(Id));
    }
  }
  // Printing the parse is a fixed point.
  EXPECT_EQ(printProgram(*Parsed), Text);
}

TEST_P(RoundTripFuzz, ProfileTextFormat) {
  Program Prog = randomProgram(GetParam() * 7 + 3);
  ProgramProfile Profile;
  Rng TraceRng(GetParam() * 13 + 5);
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    TraceGenOptions Options;
    Options.BranchBudget = 50 + TraceRng.nextIndex(300);
    Profile.Procs.push_back(collectProfile(
        Prog.proc(P),
        generateTrace(Prog.proc(P), BranchBehavior::uniform(Prog.proc(P)),
                      TraceRng, Options)));
  }
  std::string Text = printProgramProfile(Prog, Profile);
  std::string Error;
  std::optional<ProgramProfile> Parsed =
      parseProgramProfile(Prog, Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    EXPECT_EQ(Parsed->Procs[P].BlockCounts, Profile.Procs[P].BlockCounts);
    EXPECT_EQ(Parsed->Procs[P].EdgeCounts, Profile.Procs[P].EdgeCounts);
  }
  EXPECT_EQ(printProgramProfile(Prog, *Parsed), Text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::Range<uint64_t>(1, 13));
