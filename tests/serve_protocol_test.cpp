//===- tests/serve_protocol_test.cpp - wire protocol fuzz/negative --------===//
//
// The balign-serve robustness battery: arbitrary bytes, truncated
// frames, hostile length prefixes, wrong versions, and mid-frame
// disconnects must all produce a structured error frame (or a clean
// close) in bounded time — never a crash, a hang, or a partial write.
// Runs under the ASan/UBSan and TSan CI legs like every other test.
//
//===--------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <csignal>
#include <limits>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace balign;

namespace {

/// A peer that closed mid-response must not kill the test binary.
struct IgnoreSigpipe {
  IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

const char *DemoCfg = R"(program demo
proc tokenize {
  entry:  size 4 jump -> header
  header: size 2 cond -> fill scan
  fill:   size 8 jump -> scan
  scan:   size 3 cond -> header done
  done:   size 2 ret
}
)";

AlignRequest demoRequest() {
  AlignRequest Req;
  Req.Seed = 7;
  Req.Budget = 2000;
  Req.CfgText = DemoCfg;
  return Req;
}

/// A connected socketpair; both ends close on destruction unless
/// released first.
struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  }
  ~SocketPair() {
    closeClient();
    closeServer();
  }
  int client() const { return Fds[0]; }
  int server() const { return Fds[1]; }
  void closeClient() {
    if (Fds[0] >= 0)
      ::close(Fds[0]);
    Fds[0] = -1;
  }
  void closeServer() {
    if (Fds[1] >= 0)
      ::close(Fds[1]);
    Fds[1] = -1;
  }
};

/// Runs serveConnection on a background thread over \p Pair's server
/// end; joins in the destructor (the test must close/half-close the
/// client end to let the server finish).
struct ServerRun {
  ServerRun(AlignServer &Server, SocketPair &Pair)
      : Thread([&Server, &Pair, this] {
          End = Server.serveConnection(Pair.server(), Pair.server());
          // Mirror the accept loop, which closes a connection's fd when
          // serveConnection returns; without this a client draining to
          // EOF would block forever on the still-open server end.
          Pair.closeServer();
        }) {}
  ~ServerRun() {
    if (Thread.joinable())
      Thread.join();
  }
  void join() { Thread.join(); }

  AlignServer::ConnectionEnd End = AlignServer::ConnectionEnd::Eof;
  std::thread Thread;
};

/// Default single-threaded server over a cache-less base.
struct ServerFixture {
  AlignmentOptions Base;
  AlignServer Server;
  ServerFixture(ServeConfig Config = {}) : Server(Base, configOf(Config)) {}
  static ServeConfig configOf(ServeConfig Config) {
    if (Config.Threads == 0)
      Config.Threads = 1;
    return Config;
  }
};

void writeAll(int Fd, const std::string &Bytes) {
  ASSERT_TRUE(writeFull(Fd, Bytes.data(), Bytes.size()));
}

Frame readResponse(int Fd) {
  Frame F;
  FrameError Code = FrameError::None;
  std::string Message;
  EXPECT_EQ(ReadStatus::Ok, readFrame(Fd, F, Code, Message)) << Message;
  return F;
}

FrameError errorCodeOf(const Frame &F) {
  EXPECT_EQ(FrameType::Error, F.Type);
  FrameError Code = FrameError::None;
  std::string Message;
  EXPECT_TRUE(decodeErrorFrame(F, Code, Message));
  return Code;
}

} // namespace

TEST(ServeProtocolTest, FrameRoundTrip) {
  Frame In = makeFrame(FrameType::Ping, "hello");
  std::string Wire = encodeFrame(In);
  // [u32 len][B S ver type][body]
  ASSERT_EQ(4 + FrameHeaderBytes + 5, Wire.size());
  EXPECT_EQ('B', Wire[4]);
  EXPECT_EQ('S', Wire[5]);
  EXPECT_EQ(ServeProtocolVersion, static_cast<uint8_t>(Wire[6]));

  int Pipe[2];
  ASSERT_EQ(0, ::pipe(Pipe));
  ASSERT_TRUE(writeFull(Pipe[1], Wire.data(), Wire.size()));
  ::close(Pipe[1]);
  Frame Out;
  FrameError Code = FrameError::None;
  std::string Message;
  EXPECT_EQ(ReadStatus::Ok, readFrame(Pipe[0], Out, Code, Message));
  EXPECT_EQ(In.Type, Out.Type);
  EXPECT_EQ(In.Body, Out.Body);
  EXPECT_EQ(ReadStatus::Eof, readFrame(Pipe[0], Out, Code, Message));
  ::close(Pipe[0]);
}

TEST(ServeProtocolTest, AlignRequestRoundTrip) {
  AlignRequest In = demoRequest();
  In.DeadlineMs = 250;
  In.Effort = EffortPolicy::Scaled;
  In.OnError = OnErrorPolicy::Fallback;
  In.ComputeBounds = true;
  In.HasProfile = true;
  In.ProfileText = "profile demo\n";

  AlignRequest Out;
  std::string Error;
  ASSERT_TRUE(decodeAlignRequest(encodeAlignRequest(In), Out, &Error))
      << Error;
  EXPECT_EQ(In.Seed, Out.Seed);
  EXPECT_EQ(In.Budget, Out.Budget);
  EXPECT_EQ(In.DeadlineMs, Out.DeadlineMs);
  EXPECT_EQ(In.Effort, Out.Effort);
  EXPECT_EQ(In.OnError, Out.OnError);
  EXPECT_EQ(In.ComputeBounds, Out.ComputeBounds);
  EXPECT_EQ(In.HasProfile, Out.HasProfile);
  EXPECT_EQ(In.CfgText, Out.CfgText);
  EXPECT_EQ(In.ProfileText, Out.ProfileText);
}

TEST(ServeProtocolTest, AlignRequestRejectsEveryTruncation) {
  std::string Full = encodeAlignRequest(demoRequest());
  AlignRequest Out;
  for (size_t Len = 0; Len != Full.size(); ++Len) {
    std::string Error;
    EXPECT_FALSE(decodeAlignRequest(Full.substr(0, Len), Out, &Error))
        << "length " << Len << " decoded";
    EXPECT_FALSE(Error.empty());
  }
  EXPECT_TRUE(decodeAlignRequest(Full, Out, nullptr));
}

TEST(ServeProtocolTest, AlignRequestStrictness) {
  AlignRequest Out;
  std::string Full = encodeAlignRequest(demoRequest());

  // Trailing bytes.
  EXPECT_FALSE(decodeAlignRequest(Full + "x", Out, nullptr));

  // Reserved byte nonzero (offset: 8 seed + 8 budget + 4 deadline +
  // 1 effort + 1 onerror + 1 flags = 23).
  std::string Bad = Full;
  Bad[23] = 1;
  EXPECT_FALSE(decodeAlignRequest(Bad, Out, nullptr));

  // Unknown effort / on-error / flag bits.
  Bad = Full;
  Bad[20] = 17;
  EXPECT_FALSE(decodeAlignRequest(Bad, Out, nullptr));
  Bad = Full;
  Bad[21] = 9;
  EXPECT_FALSE(decodeAlignRequest(Bad, Out, nullptr));
  Bad = Full;
  Bad[22] = static_cast<char>(0x80);
  EXPECT_FALSE(decodeAlignRequest(Bad, Out, nullptr));

  // Profile bytes without the profile flag: append a nonzero profile
  // length by rebuilding with HasProfile then clearing the flag bit.
  AlignRequest WithProf = demoRequest();
  WithProf.HasProfile = true;
  WithProf.ProfileText = "p";
  Bad = encodeAlignRequest(WithProf);
  Bad[22] &= ~char(2);
  EXPECT_FALSE(decodeAlignRequest(Bad, Out, nullptr));
}

TEST(ServeProtocolTest, ObjectiveExtensionRoundTrip) {
  AlignRequest In = demoRequest();
  In.HasObjective = true;
  In.Primary = PrimaryAligner::ExtTsp;
  In.Objective = ObjectiveKind::Fallthrough;
  In.ExtTspForwardWindow = 2048;
  In.ExtTspBackwardWindow = 512;
  In.ExtTspForwardWeight = 0.375;
  In.ExtTspBackwardWeight = 0.0625;

  AlignRequest Out;
  std::string Error;
  ASSERT_TRUE(decodeAlignRequest(encodeAlignRequest(In), Out, &Error))
      << Error;
  EXPECT_TRUE(Out.HasObjective);
  EXPECT_EQ(In.Primary, Out.Primary);
  EXPECT_EQ(In.Objective, Out.Objective);
  EXPECT_EQ(In.ExtTspForwardWindow, Out.ExtTspForwardWindow);
  EXPECT_EQ(In.ExtTspBackwardWindow, Out.ExtTspBackwardWindow);
  EXPECT_EQ(In.ExtTspForwardWeight, Out.ExtTspForwardWeight);
  EXPECT_EQ(In.ExtTspBackwardWeight, Out.ExtTspBackwardWeight);
}

TEST(ServeProtocolTest, ObjectiveExtensionDoesNotDisturbLegacyLayout) {
  // With the extension flag clear, the encoded bytes are exactly the
  // pre-extension layout — that is what keeps the committed golden
  // frames and old clients valid against this server.
  AlignRequest Legacy = demoRequest();
  AlignRequest WithDefaults = demoRequest();
  WithDefaults.Primary = PrimaryAligner::ExtTsp; // Ignored: flag clear.
  EXPECT_EQ(encodeAlignRequest(Legacy), encodeAlignRequest(WithDefaults));

  AlignRequest Extended = demoRequest();
  Extended.HasObjective = true;
  std::string Ext = encodeAlignRequest(Extended);
  std::string Plain = encodeAlignRequest(Legacy);
  // The extension strictly appends (plus the flag bit): same prefix.
  ASSERT_EQ(Plain.size() + 26, Ext.size());
  EXPECT_EQ(Plain.substr(0, 22), Ext.substr(0, 22)); // Up to the flags.
  EXPECT_EQ(Plain.substr(23), Ext.substr(23, Plain.size() - 23));
}

TEST(ServeProtocolTest, ObjectiveExtensionRejectsBadValues) {
  AlignRequest Base = demoRequest();
  Base.HasObjective = true;
  AlignRequest Out;

  // Every truncation of the extension block fails.
  std::string Full = encodeAlignRequest(Base);
  for (size_t Cut = 1; Cut <= 26; ++Cut)
    EXPECT_FALSE(decodeAlignRequest(Full.substr(0, Full.size() - Cut), Out,
                                    nullptr))
        << "cut " << Cut;

  // Unknown primary / objective enum values.
  std::string Bad = Full;
  Bad[Full.size() - 26] = 2;
  EXPECT_FALSE(decodeAlignRequest(Bad, Out, nullptr));
  Bad = Full;
  Bad[Full.size() - 25] = 7;
  EXPECT_FALSE(decodeAlignRequest(Bad, Out, nullptr));

  // Out-of-range windows.
  AlignRequest ZeroWin = Base;
  ZeroWin.ExtTspForwardWindow = 0;
  EXPECT_FALSE(decodeAlignRequest(encodeAlignRequest(ZeroWin), Out, nullptr));
  AlignRequest HugeWin = Base;
  HugeWin.ExtTspBackwardWindow = (1u << 20) + 1;
  EXPECT_FALSE(decodeAlignRequest(encodeAlignRequest(HugeWin), Out, nullptr));

  // Negative, oversized, and NaN weights (unspellable by the CLI, but
  // raw frames can carry any bit pattern).
  AlignRequest NegW = Base;
  NegW.ExtTspForwardWeight = -0.5;
  EXPECT_FALSE(decodeAlignRequest(encodeAlignRequest(NegW), Out, nullptr));
  AlignRequest BigW = Base;
  BigW.ExtTspBackwardWeight = 1025.0;
  EXPECT_FALSE(decodeAlignRequest(encodeAlignRequest(BigW), Out, nullptr));
  AlignRequest NanW = Base;
  NanW.ExtTspForwardWeight = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(decodeAlignRequest(encodeAlignRequest(NanW), Out, nullptr));
  AlignRequest InfW = Base;
  InfW.ExtTspBackwardWeight = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(decodeAlignRequest(encodeAlignRequest(InfW), Out, nullptr));
}

TEST(ServeProtocolTest, DecodeSurvivesRandomBytes) {
  Rng R(2026);
  AlignRequest Out;
  for (int I = 0; I != 500; ++I) {
    std::string Body(R.nextIndex(64), '\0');
    for (char &C : Body)
      C = static_cast<char>(R.nextIndex(256));
    std::string Error;
    // Must never crash or over-read; success is fine if the bytes
    // happen to form a request (vanishingly unlikely but legal).
    decodeAlignRequest(Body, Out, &Error);
  }
}

TEST(ServeProtocolTest, OversizedLengthPrefixRejectedBeforePayload) {
  SocketPair Pair;
  // Claim 4 GiB; send nothing else and DO NOT close — readFrame must
  // reject from the prefix alone, in bounded time, or this test hangs.
  std::string Prefix = {'\xff', '\xff', '\xff', '\xff'};
  writeAll(Pair.client(), Prefix);
  Frame F;
  FrameError Code = FrameError::None;
  std::string Message;
  EXPECT_EQ(ReadStatus::Error, readFrame(Pair.server(), F, Code, Message));
  EXPECT_EQ(FrameError::TooLarge, Code);
}

TEST(ServeProtocolTest, TruncatedFrameIsBadFrame) {
  SocketPair Pair;
  std::string Wire = encodeFrame(makeFrame(FrameType::Ping, "ping-body"));
  writeAll(Pair.client(), Wire.substr(0, Wire.size() - 3));
  Pair.closeClient();
  Frame F;
  FrameError Code = FrameError::None;
  std::string Message;
  EXPECT_EQ(ReadStatus::Error, readFrame(Pair.server(), F, Code, Message));
  EXPECT_EQ(FrameError::BadFrame, Code);
}

TEST(ServeProtocolTest, WrongVersionIsBadVersion) {
  SocketPair Pair;
  std::string Wire = encodeFrame(makeFrame(FrameType::Ping));
  Wire[6] = static_cast<char>(ServeProtocolVersion + 1);
  writeAll(Pair.client(), Wire);
  Frame F;
  FrameError Code = FrameError::None;
  std::string Message;
  EXPECT_EQ(ReadStatus::Error, readFrame(Pair.server(), F, Code, Message));
  EXPECT_EQ(FrameError::BadVersion, Code);
  EXPECT_NE(std::string::npos, Message.find(
      std::to_string(ServeProtocolVersion + 1)));
}

TEST(ServeProtocolTest, ServerAnswersGarbageWithErrorFrameAndSurvives) {
  ServerFixture Fixture;
  Rng R(7);
  for (int Round = 0; Round != 20; ++Round) {
    SocketPair Pair;
    ServerRun Run(Fixture.Server, Pair);
    std::string Garbage(8 + R.nextIndex(64), '\0');
    for (char &C : Garbage)
      C = static_cast<char>(R.nextIndex(256));
    // Avoid the one prefix that waits for more input: a plausible small
    // length with too few bytes behind it is the half-close case below.
    ASSERT_TRUE(writeFull(Pair.client(), Garbage.data(), Garbage.size()));
    ::shutdown(Pair.client(), SHUT_WR); // Mid-stream disconnect.
    // Whatever the garbage looked like, the connection must end in
    // bounded time with either a clean close or one error frame.
    Frame F;
    FrameError Code = FrameError::None;
    std::string Message;
    while (readFrame(Pair.client(), F, Code, Message) == ReadStatus::Ok) {
    }
    Run.join();
    EXPECT_NE(AlignServer::ConnectionEnd::Shutdown, Run.End);
  }
  // The server is still healthy: a clean connection works.
  SocketPair Pair;
  ServerRun Run(Fixture.Server, Pair);
  ServeClient Client;
  Client.wrap(Pair.client(), Pair.client());
  Frame Response;
  std::string Error;
  ASSERT_TRUE(Client.call(makeFrame(FrameType::Ping, "ok"), Response,
                          &Error))
      << Error;
  EXPECT_EQ(FrameType::Pong, Response.Type);
  EXPECT_EQ("ok", Response.Body);
  Pair.closeClient();
}

TEST(ServeProtocolTest, MidFrameDisconnectGetsStructuredError) {
  ServerFixture Fixture;
  SocketPair Pair;
  ServerRun Run(Fixture.Server, Pair);
  std::string Wire =
      encodeFrame(makeFrame(FrameType::Align,
                            encodeAlignRequest(demoRequest())));
  writeAll(Pair.client(), Wire.substr(0, Wire.size() / 2));
  ::shutdown(Pair.client(), SHUT_WR); // Disconnect mid-frame...
  Frame Response = readResponse(Pair.client()); // ...still get an answer.
  EXPECT_EQ(FrameError::BadFrame, errorCodeOf(Response));
  Run.join();
  EXPECT_EQ(AlignServer::ConnectionEnd::ProtocolError, Run.End);
  EXPECT_EQ(1u, Fixture.Server.metrics().counter("serve.frames.bad"));
}

TEST(ServeProtocolTest, NonRequestTypeIsBadType) {
  ServerFixture Fixture;
  SocketPair Pair;
  ServerRun Run(Fixture.Server, Pair);
  // A response type sent as a request is well-framed but not a request.
  writeAll(Pair.client(), encodeFrame(makeFrame(FrameType::Pong)));
  Frame Response = readResponse(Pair.client());
  EXPECT_EQ(FrameError::BadType, errorCodeOf(Response));
  // The connection survives a BadType (only framing errors close it).
  writeAll(Pair.client(), encodeFrame(makeFrame(FrameType::Ping, "x")));
  Response = readResponse(Pair.client());
  EXPECT_EQ(FrameType::Pong, Response.Type);
  Pair.closeClient();
  Run.join();
  EXPECT_EQ(AlignServer::ConnectionEnd::Eof, Run.End);
}

TEST(ServeProtocolTest, MetricsAndShutdownRejectBodies) {
  ServerFixture Fixture;
  SocketPair Pair;
  ServerRun Run(Fixture.Server, Pair);
  writeAll(Pair.client(), encodeFrame(makeFrame(FrameType::Metrics, "x")));
  EXPECT_EQ(FrameError::BadRequest,
            errorCodeOf(readResponse(Pair.client())));
  writeAll(Pair.client(), encodeFrame(makeFrame(FrameType::Shutdown, "x")));
  EXPECT_EQ(FrameError::BadRequest,
            errorCodeOf(readResponse(Pair.client())));
  Pair.closeClient();
  Run.join();
  EXPECT_EQ(AlignServer::ConnectionEnd::Eof, Run.End);
}

TEST(ServeProtocolTest, MalformedAlignBodyIsBadRequestNotConnectionLoss) {
  ServerFixture Fixture;
  SocketPair Pair;
  ServerRun Run(Fixture.Server, Pair);
  writeAll(Pair.client(),
           encodeFrame(makeFrame(FrameType::Align, "not a request")));
  EXPECT_EQ(FrameError::BadRequest,
            errorCodeOf(readResponse(Pair.client())));
  // Sibling request on the same connection still succeeds.
  writeAll(Pair.client(),
           encodeFrame(makeFrame(FrameType::Align,
                                 encodeAlignRequest(demoRequest()))));
  Frame Response = readResponse(Pair.client());
  EXPECT_EQ(FrameType::AlignOk, Response.Type);
  EXPECT_NE(std::string::npos, Response.Body.find("proc tokenize layout:"));
  Pair.closeClient();
  Run.join();
}

TEST(ServeProtocolTest, UnparsableCfgIsParseError) {
  ServerFixture Fixture;
  SocketPair Pair;
  ServerRun Run(Fixture.Server, Pair);
  AlignRequest Req = demoRequest();
  Req.CfgText = "this is not a cfg";
  writeAll(Pair.client(),
           encodeFrame(makeFrame(FrameType::Align,
                                 encodeAlignRequest(Req))));
  EXPECT_EQ(FrameError::ParseError,
            errorCodeOf(readResponse(Pair.client())));
  Pair.closeClient();
  Run.join();
}

TEST(ServeProtocolTest, ShutdownFrameStopsCleanly) {
  ServerFixture Fixture;
  SocketPair Pair;
  ServerRun Run(Fixture.Server, Pair);
  writeAll(Pair.client(), encodeFrame(makeFrame(FrameType::Shutdown)));
  Frame Response = readResponse(Pair.client());
  EXPECT_EQ(FrameType::ShutdownOk, Response.Type);
  Run.join();
  EXPECT_EQ(AlignServer::ConnectionEnd::Shutdown, Run.End);
}
