//===- tests/cache_fingerprint_test.cpp - Cache fingerprint tests ----------===//

#include "cache/Fingerprint.h"

#include "ir/CFGBuilder.h"
#include "profile/Trace.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace balign;

namespace {

Procedure genProc(uint64_t Seed, unsigned BranchSites = 6) {
  Rng R(Seed);
  GenParams Params;
  Params.TargetBranchSites = BranchSites;
  return generateProcedure("p", Params, R).Proc;
}

ProcedureProfile genProfile(const Procedure &Proc, uint64_t Seed,
                            uint64_t Budget = 500) {
  Rng TraceRng(Seed);
  TraceGenOptions Options;
  Options.BranchBudget = Budget;
  return collectProfile(
      Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                          Options));
}

Fingerprint fp(const Procedure &Proc, const ProcedureProfile &Profile,
               const AlignmentOptions &Options, size_t Index = 0) {
  return fingerprintProcedureInputs(Proc, Profile, Options, Index);
}

} // namespace

TEST(CacheFingerprintTest, DeterministicAcrossCalls) {
  Procedure Proc = genProc(1);
  ProcedureProfile Profile = genProfile(Proc, 2);
  AlignmentOptions Options;
  EXPECT_EQ(fp(Proc, Profile, Options), fp(Proc, Profile, Options));
}

TEST(CacheFingerprintTest, StreamingBoundariesDoNotMatter) {
  const char Data[] = "fingerprint-stream";
  Hasher Whole;
  Whole.bytes(Data, sizeof(Data));
  Hasher Split;
  Split.bytes(Data, 5);
  Split.bytes(Data + 5, sizeof(Data) - 5);
  EXPECT_EQ(Whole.digest(), Split.digest());
}

TEST(CacheFingerprintTest, LengthPrefixedStringsAvoidConcatenationClash) {
  Hasher A, B;
  A.str("ab");
  A.str("c");
  B.str("a");
  B.str("bc");
  EXPECT_NE(A.digest(), B.digest());
}

TEST(CacheFingerprintTest, NamesAreDeliberatelyNotKeyed) {
  Procedure Proc = genProc(3);
  ProcedureProfile Profile = genProfile(Proc, 4);
  AlignmentOptions Options;
  Fingerprint Before = fp(Proc, Profile, Options);

  Procedure Renamed = Proc;
  Renamed.setName("completely_different");
  for (BlockId Id = 0; Id != Renamed.numBlocks(); ++Id)
    Renamed.block(Id).Name = "bb_" + std::to_string(Id * 7);
  EXPECT_EQ(Before, fp(Renamed, Profile, Options));
}

TEST(CacheFingerprintTest, CfgContentIsKeyed) {
  Procedure Proc = genProc(5);
  ProcedureProfile Profile = genProfile(Proc, 6);
  AlignmentOptions Options;
  Fingerprint Base = fp(Proc, Profile, Options);

  Procedure Grown = Proc;
  Grown.block(0).InstrCount += 1;
  EXPECT_NE(Base, fp(Grown, Profile, Options));
}

TEST(CacheFingerprintTest, ProfileCountsAreKeyed) {
  Procedure Proc = genProc(7);
  ProcedureProfile Profile = genProfile(Proc, 8);
  AlignmentOptions Options;
  Fingerprint Base = fp(Proc, Profile, Options);

  ProcedureProfile Bumped = Profile;
  Bumped.BlockCounts[0] += 1;
  EXPECT_NE(Base, fp(Proc, Bumped, Options));

  ProcedureProfile EdgeBumped = Profile;
  for (auto &Edges : EdgeBumped.EdgeCounts)
    if (!Edges.empty()) {
      Edges.back() += 1;
      break;
    }
  EXPECT_NE(Base, fp(Proc, EdgeBumped, Options));
}

TEST(CacheFingerprintTest, ResultAffectingOptionsAreKeyed) {
  Procedure Proc = genProc(9);
  ProcedureProfile Profile = genProfile(Proc, 10);
  AlignmentOptions Base;
  Fingerprint F = fp(Proc, Profile, Base);

  AlignmentOptions Model = Base;
  Model.Model = MachineModel::deepPipeline();
  EXPECT_NE(F, fp(Proc, Profile, Model));

  AlignmentOptions Seed = Base;
  Seed.Solver.Seed += 1;
  EXPECT_NE(F, fp(Proc, Profile, Seed));

  AlignmentOptions Effort = Base;
  Effort.Solver.IterationsFactor *= 2.0;
  EXPECT_NE(F, fp(Proc, Profile, Effort));

  AlignmentOptions Bounds = Base;
  Bounds.ComputeBounds = !Base.ComputeBounds;
  EXPECT_NE(F, fp(Proc, Profile, Bounds));

  // The derived seed makes the procedure's position part of the key.
  EXPECT_NE(fp(Proc, Profile, Base, 0), fp(Proc, Profile, Base, 1));
}

TEST(CacheFingerprintTest, HeldKarpOptionsKeyedOnlyWithBounds) {
  Procedure Proc = genProc(11);
  ProcedureProfile Profile = genProfile(Proc, 12);

  AlignmentOptions NoBounds;
  NoBounds.ComputeBounds = false;
  AlignmentOptions NoBoundsHk = NoBounds;
  NoBoundsHk.HeldKarp.Iterations = 777;
  EXPECT_EQ(fp(Proc, Profile, NoBounds), fp(Proc, Profile, NoBoundsHk));

  AlignmentOptions WithBounds;
  WithBounds.ComputeBounds = true;
  AlignmentOptions WithBoundsHk = WithBounds;
  WithBoundsHk.HeldKarp.Iterations = 777;
  EXPECT_NE(fp(Proc, Profile, WithBounds), fp(Proc, Profile, WithBoundsHk));
}

TEST(CacheFingerprintTest, ThreadsAndHooksAreDeliberatelyNotKeyed) {
  Procedure Proc = genProc(13);
  ProcedureProfile Profile = genProfile(Proc, 14);
  AlignmentOptions Base;
  Fingerprint F = fp(Proc, Profile, Base);

  AlignmentOptions Threaded = Base;
  Threaded.Threads = 8;
  Threaded.Hooks.AfterProcedure = [](size_t, const Procedure &,
                                     const ProcedureProfile &,
                                     const ProcedureAlignment &) {};
  Threaded.Cache = CacheMode::Memory;
  Threaded.CachePath = "/nonexistent";
  EXPECT_EQ(F, fp(Proc, Profile, Threaded));
}

TEST(CacheFingerprintTest, DistinctInputsGetDistinctDigests) {
  AlignmentOptions Options;
  std::set<std::string> Digests;
  const int N = 256;
  for (int I = 0; I != N; ++I) {
    Procedure Proc = genProc(1000 + I, 3 + I % 7);
    ProcedureProfile Profile = genProfile(Proc, 2000 + I);
    Digests.insert(fp(Proc, Profile, Options).str());
  }
  EXPECT_EQ(Digests.size(), static_cast<size_t>(N));
}

TEST(CacheFingerprintTest, NearbyInputsAvalanche) {
  Procedure Proc = genProc(15);
  ProcedureProfile Profile = genProfile(Proc, 16);
  AlignmentOptions A;
  AlignmentOptions B;
  B.Solver.Seed = A.Solver.Seed + 1;
  Fingerprint Fa = fp(Proc, Profile, A);
  Fingerprint Fb = fp(Proc, Profile, B);
  int Differing = __builtin_popcountll(Fa.Hi ^ Fb.Hi) +
                  __builtin_popcountll(Fa.Lo ^ Fb.Lo);
  // A one-bit input change should flip a substantial share of the 128
  // output bits; anything above a third is comfortably avalanched.
  EXPECT_GT(Differing, 42);
}
