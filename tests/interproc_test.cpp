//===- tests/interproc_test.cpp - Interprocedural placement tests -------------===//

#include "interproc/Interleave.h"
#include "interproc/Placement.h"
#include "interproc/ProcOrder.h"
#include "profile/Trace.h"
#include "sim/Replayer.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace balign;

namespace {

bool isPermutation(const ProcOrder &Order, size_t N) {
  if (Order.size() != N)
    return false;
  std::vector<bool> Seen(N, false);
  for (size_t P : Order) {
    if (P >= N || Seen[P])
      return false;
    Seen[P] = true;
  }
  return true;
}

/// A small program plus traces for placement tests.
struct PlacementFixture {
  Program Prog{"place"};
  std::vector<MaterializedLayout> Mats;
  std::vector<ExecutionTrace> Traces;
  MachineModel Model = MachineModel::alpha21164();

  explicit PlacementFixture(size_t NumProcs, uint64_t Seed = 5,
                            uint64_t Budget = 150) {
    for (size_t P = 0; P != NumProcs; ++P) {
      Rng StructureRng(Seed * 31 + P);
      GenParams Params;
      Params.TargetBranchSites = 4;
      GeneratedProcedure Gen =
          generateProcedure("p" + std::to_string(P), Params, StructureRng);
      Prog.addProcedure(Gen.Proc);
    }
    for (size_t P = 0; P != NumProcs; ++P) {
      const Procedure &Proc = Prog.proc(P);
      Rng TraceRng(Seed * 57 + P);
      TraceGenOptions Options;
      Options.BranchBudget = Budget;
      Traces.push_back(generateTrace(Proc, BranchBehavior::uniform(Proc),
                                     TraceRng, Options));
      ProcedureProfile Profile = collectProfile(Proc, Traces.back());
      Mats.push_back(materializeLayout(Proc, Layout::original(Proc),
                                       Profile, Model));
    }
  }
};

} // namespace

TEST(InterleaveTest, ConsumesEveryInvocation) {
  std::vector<uint64_t> Counts = {5, 0, 12, 3};
  InterleaveOptions Options;
  CallSequence Sequence = generateCallSequence(Counts, Options);
  EXPECT_EQ(Sequence.size(), 20u);
  std::vector<uint64_t> Seen(4, 0);
  for (size_t P : Sequence) {
    ASSERT_LT(P, 4u);
    ++Seen[P];
  }
  EXPECT_EQ(Seen[0], 5u);
  EXPECT_EQ(Seen[1], 0u);
  EXPECT_EQ(Seen[2], 12u);
  EXPECT_EQ(Seen[3], 3u);
}

TEST(InterleaveTest, DeterministicForSeed) {
  std::vector<uint64_t> Counts = {10, 20, 30};
  InterleaveOptions Options;
  EXPECT_EQ(generateCallSequence(Counts, Options),
            generateCallSequence(Counts, Options));
}

TEST(InterleaveTest, BurstsKeepProceduresTogether) {
  std::vector<uint64_t> Counts = {500, 500};
  InterleaveOptions Bursty;
  Bursty.BurstLength = 16.0;
  InterleaveOptions Choppy;
  Choppy.BurstLength = 1.0;
  auto Switches = [](const CallSequence &S) {
    size_t N = 0;
    for (size_t I = 0; I + 1 < S.size(); ++I)
      N += S[I] != S[I + 1];
    return N;
  };
  EXPECT_LT(Switches(generateCallSequence(Counts, Bursty)),
            Switches(generateCallSequence(Counts, Choppy)));
}

TEST(AffinityTest, CountsWindowedCoOccurrence) {
  CallSequence Sequence = {0, 1, 0, 1, 2};
  auto Affinity = computeAffinity(Sequence, 3, /*Window=*/1);
  EXPECT_EQ(Affinity[0][1], 3u); // Adjacent pairs (0,1),(1,0),(0,1).
  EXPECT_EQ(Affinity[1][0], Affinity[0][1]);
  EXPECT_EQ(Affinity[1][2], 1u);
  EXPECT_EQ(Affinity[0][2], 0u);
  EXPECT_EQ(Affinity[0][0], 0u); // Self-affinity excluded.
}

TEST(ProcOrderTest, BaselinesArePermutations) {
  EXPECT_EQ(originalProcOrder(4), (ProcOrder{0, 1, 2, 3}));
  ProcOrder Random = randomProcOrder(20, 7);
  EXPECT_TRUE(isPermutation(Random, 20));
  EXPECT_NE(Random, originalProcOrder(20));
}

TEST(ProcOrderTest, PettisHansenChainsHeaviestPair) {
  // Affinity: 0-1 heavy, 2-3 medium, others zero.
  std::vector<std::vector<uint64_t>> Affinity(4,
                                              std::vector<uint64_t>(4, 0));
  Affinity[0][1] = Affinity[1][0] = 100;
  Affinity[2][3] = Affinity[3][2] = 40;
  ProcOrder Order = pettisHansenOrder(Affinity);
  ASSERT_TRUE(isPermutation(Order, 4));
  auto PosOf = [&](size_t P) {
    return std::find(Order.begin(), Order.end(), P) - Order.begin();
  };
  EXPECT_EQ(std::abs(PosOf(0) - PosOf(1)), 1);
  EXPECT_EQ(std::abs(PosOf(2) - PosOf(3)), 1);
  // The heavy chain leads.
  EXPECT_LT(std::min(PosOf(0), PosOf(1)), std::min(PosOf(2), PosOf(3)));
}

TEST(ProcOrderTest, PettisHansenReversesChainsToKeepEndpointsAdjacent) {
  // Weights force the chain (0,1) first; then edge (0,2) arrives while 0
  // sits at the chain's *front*, so PH must reverse (0,1) -> (1,0)
  // before appending 2: final order keeps both heavy pairs adjacent.
  std::vector<std::vector<uint64_t>> Affinity(3,
                                              std::vector<uint64_t>(3, 0));
  Affinity[0][1] = Affinity[1][0] = 100;
  Affinity[0][2] = Affinity[2][0] = 60;
  ProcOrder Order = pettisHansenOrder(Affinity);
  ASSERT_TRUE(isPermutation(Order, 3));
  EXPECT_EQ(adjacentAffinity(Order, Affinity), 160u)
      << "both heavy adjacencies must be realized";
}

TEST(ProcOrderTest, TspOrderMaximizesAdjacencyAtLeastAsWellAsPh) {
  Rng Rand(99);
  size_t N = 12;
  std::vector<std::vector<uint64_t>> Affinity(N,
                                              std::vector<uint64_t>(N, 0));
  for (size_t A = 0; A != N; ++A)
    for (size_t B = A + 1; B != N; ++B)
      Affinity[A][B] = Affinity[B][A] = Rand.nextBelow(100);

  ProcOrder Ph = pettisHansenOrder(Affinity);
  ProcOrder Tsp = tspOrder(Affinity);
  ASSERT_TRUE(isPermutation(Ph, N));
  ASSERT_TRUE(isPermutation(Tsp, N));
  EXPECT_GE(adjacentAffinity(Tsp, Affinity), adjacentAffinity(Ph, Affinity));
  EXPECT_GT(adjacentAffinity(Tsp, Affinity),
            adjacentAffinity(originalProcOrder(N), Affinity));
}

TEST(ReplayerTest, InvocationSlicesPartitionTrace) {
  PlacementFixture F(1);
  auto Slices = invocationSlices(F.Prog.proc(0), F.Traces[0]);
  ASSERT_FALSE(Slices.empty());
  size_t Expect = 0;
  for (auto [Begin, End] : Slices) {
    EXPECT_EQ(Begin, Expect);
    EXPECT_LT(Begin, End);
    Expect = End;
    // Every slice starts at the entry block.
    EXPECT_EQ(F.Traces[0].Blocks[Begin], F.Prog.proc(0).entry());
  }
  EXPECT_EQ(Expect, F.Traces[0].Blocks.size());
  EXPECT_EQ(Slices.size(), F.Traces[0].Invocations);
}

TEST(PlacementTest, BasesFollowOrderAndAreDisjoint) {
  PlacementFixture F(3);
  ProcOrder Order = {2, 0, 1};
  std::vector<uint64_t> Bases = placementBases(F.Mats, Order, 32);
  EXPECT_EQ(Bases[2], 0u);
  EXPECT_GT(Bases[0], 0u);
  EXPECT_GE(Bases[1], Bases[0] + F.Mats[0].TotalBytes);
  for (uint64_t B : Bases)
    EXPECT_EQ(B % 32, 0u);
}

TEST(PlacementTest, InterleavedTotalsMatchSequentialCycles) {
  // Control penalties and base cycles are order- and interleaving-
  // independent; only cache behavior changes.
  PlacementFixture F(4);
  std::vector<uint64_t> Counts = invocationCounts(F.Prog, F.Traces);
  InterleaveOptions IOptions;
  CallSequence Sequence = generateCallSequence(Counts, IOptions);

  SimConfig Config;
  SimResult Sequential = simulateProgram(F.Prog, F.Mats, F.Traces, Config);
  SimResult Interleaved = simulatePlacement(
      F.Prog, F.Mats, F.Traces, Sequence, originalProcOrder(4), Config);
  EXPECT_EQ(Interleaved.BaseCycles, Sequential.BaseCycles);
  EXPECT_EQ(Interleaved.ControlPenaltyCycles,
            Sequential.ControlPenaltyCycles);
  EXPECT_EQ(Interleaved.FixupsExecuted, Sequential.FixupsExecuted);
}

TEST(PlacementTest, OrderAffectsCacheMissesOnly) {
  PlacementFixture F(6, /*Seed=*/11, /*Budget=*/400);
  std::vector<uint64_t> Counts = invocationCounts(F.Prog, F.Traces);
  InterleaveOptions IOptions;
  CallSequence Sequence = generateCallSequence(Counts, IOptions);

  SimConfig Config;
  Config.Cache.SizeBytes = 512; // Tiny: force conflicts.
  SimResult A = simulatePlacement(F.Prog, F.Mats, F.Traces, Sequence,
                                  originalProcOrder(6), Config);
  SimResult B = simulatePlacement(F.Prog, F.Mats, F.Traces, Sequence,
                                  randomProcOrder(6, 3), Config);
  EXPECT_EQ(A.BaseCycles, B.BaseCycles);
  EXPECT_EQ(A.ControlPenaltyCycles, B.ControlPenaltyCycles);
  // Different placements conflict differently (statistically certain at
  // this cache size; both remain internally consistent).
  EXPECT_EQ(A.Cycles,
            A.BaseCycles + A.ControlPenaltyCycles + A.CacheMissCycles);
  EXPECT_NE(A.CacheMisses, B.CacheMisses);
}
