//===- tests/profile_test.cpp - Trace and profile tests -----------------------===//

#include "ir/CFGBuilder.h"
#include "profile/Profile.h"
#include "profile/Trace.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

/// entry -> loop header -> body -> header; header exits to ret.
Procedure makeLoop() {
  CFGBuilder B("loop");
  BlockId Entry = B.jump(2);
  BlockId Header = B.cond(2);
  BlockId Body = B.jump(4);
  BlockId Exit = B.ret(1);
  B.edge(Entry, Header);
  B.branches(Header, Body, Exit);
  B.edge(Body, Header);
  return B.take();
}

BranchBehavior loopBehavior(const Procedure &P, double StayProb) {
  BranchBehavior Behavior = BranchBehavior::uniform(P);
  Behavior.Probs[1] = {StayProb, 1.0 - StayProb};
  return Behavior;
}

} // namespace

TEST(BehaviorTest, UniformIsValid) {
  Procedure P = makeLoop();
  BranchBehavior B = BranchBehavior::uniform(P);
  EXPECT_TRUE(B.isValid(P));
  EXPECT_EQ(B.Probs[1].size(), 2u);
  EXPECT_DOUBLE_EQ(B.Probs[1][0], 0.5);
}

TEST(BehaviorTest, InvalidShapesRejected) {
  Procedure P = makeLoop();
  BranchBehavior B = BranchBehavior::uniform(P);
  B.Probs[1] = {0.9, 0.9}; // Does not sum to 1.
  EXPECT_FALSE(B.isValid(P));
  B.Probs[1] = {1.2, -0.2}; // Out of range.
  EXPECT_FALSE(B.isValid(P));
  B.Probs.pop_back(); // Wrong arity.
  EXPECT_FALSE(B.isValid(P));
}

TEST(TraceTest, WalksFollowCfgEdges) {
  Procedure P = makeLoop();
  Rng R(3);
  TraceGenOptions Options;
  Options.BranchBudget = 500;
  ExecutionTrace Trace = generateTrace(P, loopBehavior(P, 0.8), R, Options);
  ASSERT_FALSE(Trace.empty());
  EXPECT_EQ(Trace.Blocks.front(), P.entry());
  for (size_t I = 0; I + 1 < Trace.Blocks.size(); ++I) {
    BlockId Cur = Trace.Blocks[I];
    BlockId Next = Trace.Blocks[I + 1];
    if (P.block(Cur).Kind == TerminatorKind::Return) {
      EXPECT_EQ(Next, P.entry()); // New invocation.
      continue;
    }
    bool IsSucc = false;
    for (BlockId S : P.successors(Cur))
      IsSucc |= S == Next;
    EXPECT_TRUE(IsSucc) << "trace step " << I << " not a CFG edge";
  }
}

TEST(TraceTest, RespectsBranchBudget) {
  Procedure P = makeLoop();
  Rng R(5);
  TraceGenOptions Options;
  Options.BranchBudget = 1000;
  ExecutionTrace Trace = generateTrace(P, loopBehavior(P, 0.5), R, Options);
  ProcedureProfile Profile = collectProfile(P, Trace);
  uint64_t Branches = Profile.executedBranches(P);
  EXPECT_GE(Branches, 1000u);
  EXPECT_LT(Branches, 1200u); // Overshoot bounded by one invocation.
}

TEST(TraceTest, DeterministicGivenSeed) {
  Procedure P = makeLoop();
  TraceGenOptions Options;
  Options.BranchBudget = 100;
  Rng A(9), B(9);
  ExecutionTrace TA = generateTrace(P, loopBehavior(P, 0.7), A, Options);
  ExecutionTrace TB = generateTrace(P, loopBehavior(P, 0.7), B, Options);
  EXPECT_EQ(TA.Blocks, TB.Blocks);
  EXPECT_EQ(TA.Invocations, TB.Invocations);
}

TEST(ProfileTest, FlowConsistencyFromTrace) {
  Procedure P = makeLoop();
  Rng R(11);
  TraceGenOptions Options;
  Options.BranchBudget = 2000;
  ExecutionTrace Trace = generateTrace(P, loopBehavior(P, 0.9), R, Options);
  ProcedureProfile Profile = collectProfile(P, Trace);
  EXPECT_TRUE(Profile.isFlowConsistent(P));
  // Loop body executions match the header->body edge count.
  EXPECT_EQ(Profile.blockCount(2), Profile.edgeCount(1, 0));
  // Every invocation enters and exits once.
  EXPECT_EQ(Profile.blockCount(0), Trace.Invocations);
  EXPECT_EQ(Profile.blockCount(3), Trace.Invocations);
}

TEST(ProfileTest, HottestSuccessorAndStats) {
  Procedure P = makeLoop();
  ProcedureProfile Profile = ProcedureProfile::zeroed(P);
  Profile.EdgeCounts[1] = {30, 70};
  Profile.BlockCounts[1] = 100;
  EXPECT_EQ(Profile.hottestSuccessor(1), 1u);
  Profile.EdgeCounts[1] = {70, 30};
  EXPECT_EQ(Profile.hottestSuccessor(1), 0u);
  Profile.EdgeCounts[1] = {50, 50}; // Tie goes to the lower index.
  EXPECT_EQ(Profile.hottestSuccessor(1), 0u);

  Profile.BlockCounts = {10, 100, 90, 10};
  EXPECT_EQ(Profile.executedBranches(P), 100u);
  EXPECT_EQ(Profile.branchSitesTouched(P), 1u);
  EXPECT_EQ(Profile.dynamicInstructions(P),
            10u * 2 + 100u * 2 + 90u * 4 + 10u * 1);
}

TEST(ProfileTest, ExpectedProfileMatchesFlow) {
  Procedure P = makeLoop();
  // Stay probability 0.9 => expected 9 body executions per invocation.
  ProcedureProfile Profile =
      expectedProfile(P, loopBehavior(P, 0.9), 1000, 1e-7);
  EXPECT_TRUE(Profile.isFlowConsistent(P));
  EXPECT_EQ(Profile.blockCount(0), 1000u);
  EXPECT_NEAR(static_cast<double>(Profile.blockCount(2)), 9000.0, 10.0);
  EXPECT_NEAR(static_cast<double>(Profile.blockCount(3)), 1000.0, 2.0);
}

TEST(ProfileTest, ProgramAggregation) {
  Program Prog("agg");
  Prog.addProcedure(makeLoop());
  Prog.addProcedure(makeLoop());
  ProgramProfile Profile;
  for (int I = 0; I != 2; ++I) {
    Rng R(20 + I);
    TraceGenOptions Options;
    Options.BranchBudget = 100;
    ExecutionTrace Trace = generateTrace(
        Prog.proc(I), loopBehavior(Prog.proc(I), 0.5), R, Options);
    Profile.Procs.push_back(collectProfile(Prog.proc(I), Trace));
  }
  EXPECT_EQ(Profile.executedBranches(Prog),
            Profile.Procs[0].executedBranches(Prog.proc(0)) +
                Profile.Procs[1].executedBranches(Prog.proc(1)));
  EXPECT_EQ(Profile.branchSitesTouched(Prog), 2u);
  EXPECT_GT(Profile.dynamicInstructions(Prog), 0u);
}
