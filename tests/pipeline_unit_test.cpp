//===- tests/pipeline_unit_test.cpp - Pipeline policy unit tests --------------===//

#include "align/Penalty.h"
#include "align/Pipeline.h"
#include "ir/CFGBuilder.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "tsp/Construct.h"
#include "tsp/IteratedOpt.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

Program twoProcs(uint64_t Seed) {
  Program Prog("two");
  for (int P = 0; P != 2; ++P) {
    Rng R(Seed + P);
    GenParams Params;
    Params.TargetBranchSites = 5;
    Prog.addProcedure(generateProcedure("p" + std::to_string(P), Params,
                                        R).Proc);
  }
  return Prog;
}

} // namespace

TEST(PipelineUnitTest, UnprofiledProceduresKeepOriginalLayout) {
  Program Prog = twoProcs(3);
  ProgramProfile Train;
  // Proc 0 profiled, proc 1 completely cold.
  {
    Rng TraceRng(9);
    TraceGenOptions Options;
    Options.BranchBudget = 300;
    Train.Procs.push_back(collectProfile(
        Prog.proc(0), generateTrace(Prog.proc(0),
                                    BranchBehavior::uniform(Prog.proc(0)),
                                    TraceRng, Options)));
  }
  Train.Procs.push_back(ProcedureProfile::zeroed(Prog.proc(1)));

  AlignmentOptions Options;
  Options.ComputeBounds = false;
  ProgramAlignment Result = alignProgram(Prog, Train, Options);
  // Cold procedure: untouched by both aligners.
  EXPECT_EQ(Result.Procs[1].GreedyLayout.Order,
            Layout::original(Prog.proc(1)).Order);
  EXPECT_EQ(Result.Procs[1].TspLayout.Order,
            Layout::original(Prog.proc(1)).Order);
  EXPECT_EQ(Result.Procs[1].TspPenalty, 0u);
  // Hot procedure still aligned normally.
  EXPECT_LE(Result.Procs[0].TspPenalty, Result.Procs[0].OriginalPenalty);
}

TEST(PipelineUnitTest, AllTiesKeepCompilerOrder) {
  // On an all-zero cost matrix every tour is optimal; the canonical
  // start must win so the layout stays put.
  DirectedTsp Zero(9);
  IteratedOptOptions Options;
  DtspSolution Solution = solveDirectedTsp(Zero, Options);
  EXPECT_EQ(Solution.Cost, 0);
  EXPECT_EQ(Solution.Tour, canonicalTour(9));
  EXPECT_EQ(Solution.RunsFindingBest, Solution.NumRuns);
}

TEST(PipelineUnitTest, SeedChangesSolverStreamNotDeterminism) {
  Program Prog = twoProcs(11);
  ProgramProfile Train;
  for (int P = 0; P != 2; ++P) {
    Rng TraceRng(21 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 400;
    Train.Procs.push_back(collectProfile(
        Prog.proc(P), generateTrace(Prog.proc(P),
                                    BranchBehavior::uniform(Prog.proc(P)),
                                    TraceRng, TraceOptions)));
  }
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  ProgramAlignment A = alignProgram(Prog, Train, Options);
  ProgramAlignment B = alignProgram(Prog, Train, Options);
  for (int P = 0; P != 2; ++P) {
    EXPECT_EQ(A.Procs[P].TspLayout.Order, B.Procs[P].TspLayout.Order)
        << "alignProgram must be deterministic";
    EXPECT_EQ(A.Procs[P].TspPenalty, B.Procs[P].TspPenalty);
  }
}

TEST(PipelineUnitTest, EvaluateProgramPenaltySums) {
  Program Prog = twoProcs(17);
  ProgramProfile Train;
  for (int P = 0; P != 2; ++P) {
    Rng TraceRng(31 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 200;
    Train.Procs.push_back(collectProfile(
        Prog.proc(P), generateTrace(Prog.proc(P),
                                    BranchBehavior::uniform(Prog.proc(P)),
                                    TraceRng, TraceOptions)));
  }
  std::vector<Layout> Layouts = {Layout::original(Prog.proc(0)),
                                 Layout::original(Prog.proc(1))};
  MachineModel Model = MachineModel::alpha21164();
  uint64_t Sum = evaluateProgramPenalty(Prog, Layouts, Model, Train, Train);
  uint64_t Manual =
      evaluateLayout(Prog.proc(0), Layouts[0], Model, Train.Procs[0],
                     Train.Procs[0]) +
      evaluateLayout(Prog.proc(1), Layouts[1], Model, Train.Procs[1],
                     Train.Procs[1]);
  EXPECT_EQ(Sum, Manual);
}

/// Stage timers must report summed per-procedure CPU time: on a program
/// where every stage (greedy, matrix, solver, bounds) actually ran, all
/// four accumulators are strictly positive — serial and parallel alike.
TEST(PipelineUnitTest, StageTimesPositiveOnProfiledProgram) {
  Program Prog = twoProcs(29);
  ProgramProfile Train;
  for (int P = 0; P != 2; ++P) {
    Rng TraceRng(41 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 500;
    Train.Procs.push_back(collectProfile(
        Prog.proc(P), generateTrace(Prog.proc(P),
                                    BranchBehavior::uniform(Prog.proc(P)),
                                    TraceRng, TraceOptions)));
  }
  for (unsigned Threads : {1u, 4u}) {
    AlignmentOptions Options;
    Options.ComputeBounds = true;
    Options.Threads = Threads;
    ProgramAlignment Result = alignProgram(Prog, Train, Options);
    EXPECT_GT(Result.GreedySeconds, 0.0) << "threads=" << Threads;
    EXPECT_GT(Result.MatrixSeconds, 0.0) << "threads=" << Threads;
    EXPECT_GT(Result.SolverSeconds, 0.0) << "threads=" << Threads;
    EXPECT_GT(Result.BoundsSeconds, 0.0) << "threads=" << Threads;
  }
}

/// Thread counts beyond the procedure count (and 0 = hardware default)
/// are safe and change nothing.
TEST(PipelineUnitTest, OversubscribedAndDefaultThreadCountsIdentical) {
  Program Prog = twoProcs(37);
  ProgramProfile Train;
  for (int P = 0; P != 2; ++P) {
    Rng TraceRng(51 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 300;
    Train.Procs.push_back(collectProfile(
        Prog.proc(P), generateTrace(Prog.proc(P),
                                    BranchBehavior::uniform(Prog.proc(P)),
                                    TraceRng, TraceOptions)));
  }
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  Options.Threads = 1;
  ProgramAlignment Serial = alignProgram(Prog, Train, Options);
  for (unsigned Threads : {0u, 16u}) {
    Options.Threads = Threads;
    ProgramAlignment Other = alignProgram(Prog, Train, Options);
    ASSERT_EQ(Other.Procs.size(), Serial.Procs.size());
    for (size_t P = 0; P != Serial.Procs.size(); ++P) {
      EXPECT_EQ(Other.Procs[P].TspLayout.Order,
                Serial.Procs[P].TspLayout.Order)
          << "threads=" << Threads;
      EXPECT_EQ(Other.Procs[P].GreedyLayout.Order,
                Serial.Procs[P].GreedyLayout.Order)
          << "threads=" << Threads;
      EXPECT_EQ(Other.Procs[P].TspPenalty, Serial.Procs[P].TspPenalty)
          << "threads=" << Threads;
    }
  }
}

/// Kick-seeded restarts must not regress solution quality on small
/// instances: still exactly optimal (cross-checked in tsp_solver_test
/// against DP); here we check the restart path at least matches the
/// full-requeue path's cost on a mid-size instance.
TEST(PipelineUnitTest, SeededRestartQualityHolds) {
  Rng R(71);
  DirectedTsp D(24);
  for (City I = 0; I != 24; ++I)
    for (City J = 0; J != 24; ++J)
      if (I != J)
        D.setCost(I, J, static_cast<int64_t>(R.nextBelow(1000)));
  IteratedOptOptions Fast; // Default: seeded restarts.
  Fast.Seed = 5;
  IteratedOptOptions Thorough = Fast;
  Thorough.IterationsFactor = 8.0;
  DtspSolution SFast = solveDirectedTsp(D, Fast);
  DtspSolution SThorough = solveDirectedTsp(D, Thorough);
  EXPECT_LE(static_cast<double>(SFast.Cost),
            static_cast<double>(SThorough.Cost) * 1.03 + 1.0)
      << "2N-iteration seeded restarts should be within a few percent "
         "of an 8N budget";
}
