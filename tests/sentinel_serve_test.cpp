//===- tests/sentinel_serve_test.cpp - drain/watchdog/retry lifecycle -----===//
//
// The balign-sentinel serving contract, driven deterministically: a
// graceful drain lets a parked in-flight request finish and deliver its
// byte-identical response; a second drain request (the double-SIGTERM
// escalation, injected through requestDrain — the same hook the
// self-pipe signal watcher calls) abandons it with a structured error;
// the watchdog flags a request that blew past its deadline as
// serve.stuck on a hand-cranked clock; and the client's
// reconnect-with-backoff makes a server restart invisible to an align
// call. Every "request in flight" state is a latch the test controls,
// never a race.
//
//===--------------------------------------------------------------------===//

#include "serve/Server.h"

#include "ir/TextFormat.h"
#include "robust/Deadline.h"
#include "robust/FaultInjector.h"
#include "serve/Client.h"
#include "serve/Oneshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace balign;

namespace {

struct IgnoreSigpipe {
  IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

constexpr uint64_t ProfileBudget = 800;

const char DemoProgram[] = R"(program sentinel
proc main {
  entry: size 3 jump -> loop
  loop:  size 2 cond -> body exit
  body:  size 4 jump -> loop
  exit:  size 1 ret
}
)";

/// The request every test sends, plus the exact bytes a one-shot run
/// prints for it (the byte-identity oracle, computed through the same
/// one-shot helpers the server's service layer uses).
struct Oracle {
  AlignRequest Request;
  std::string Expected;
};

Oracle makeOracle(uint32_t DeadlineMs = 0) {
  Oracle O;
  O.Request.CfgText = DemoProgram;
  O.Request.Seed = 7;
  O.Request.Budget = ProfileBudget;
  O.Request.DeadlineMs = DeadlineMs;
  std::string Error;
  std::optional<Program> Prog = parseProgram(DemoProgram, &Error);
  EXPECT_TRUE(Prog.has_value()) << Error;
  ProgramProfile Counts = synthesizeProfile(*Prog, 7, ProfileBudget);
  AlignmentOptions Options;
  Options.Solver.Seed = 7;
  ProgramAlignment Result = alignProgram(*Prog, Counts, Options);
  O.Expected = renderAlignmentReport(*Prog, Counts, Result,
                                     /*ComputeBounds=*/false,
                                     /*EmitDot=*/false);
  return O;
}

/// The deterministic "request in flight" gate: the pool worker parks in
/// TestStallHook until the test opens the latch.
struct Latch {
  std::mutex M;
  std::condition_variable Cv;
  bool Open = false;

  void release() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Open = true;
    }
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Open; });
  }
};

/// One socketpair-backed connection to \p S (the stress-test idiom).
struct Connection {
  int Fds[2] = {-1, -1};
  std::thread Server;
  ServeClient Client;

  Connection(AlignServer &S) {
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
    Server = std::thread([&S, Fd = Fds[1]] { S.serveConnection(Fd, Fd); });
    Client.wrap(Fds[0], Fds[0]);
  }
  ~Connection() {
    Client.close();
    ::close(Fds[0]);
    Server.join();
    ::close(Fds[1]);
  }
};

/// Spins (real time, bounded) until \p Cond holds.
template <typename Fn> bool eventually(Fn Cond, int BudgetMs = 10000) {
  for (int I = 0; I != BudgetMs; ++I) {
    if (Cond())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Cond();
}

std::string chaosSockPath(const char *Name) {
  std::string Path = ::testing::TempDir() + "balign_sentinel_" + Name +
                     ".sock";
  ::unlink(Path.c_str());
  return Path;
}

} // namespace

TEST(SentinelServeTest, GracefulDrainDeliversInFlightResponse) {
  Oracle O = makeOracle();
  Latch Stall;
  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  Config.TestStallHook = [&Stall] { Stall.wait(); };
  AlignServer Server(Base, Config);

  Connection Conn(Server);
  std::string Report, Error;
  bool Ok = false;
  std::thread ClientThread([&] {
    Ok = Conn.Client.align(O.Request, Report, &Error);
  });

  // The request is provably in flight (parked on the latch), not racing.
  ASSERT_TRUE(eventually([&] { return Server.inFlightRequests() == 1; }));
  Server.requestDrain();
  EXPECT_TRUE(Server.draining());
  EXPECT_FALSE(Server.drainForced());

  // A graceful drain is supervised, not abandoned: the parked request
  // finishes and its response is byte-identical to a one-shot run.
  Stall.release();
  ClientThread.join();
  ASSERT_TRUE(Ok) << Error;
  EXPECT_EQ(O.Expected, Report);
  EXPECT_FALSE(Server.drainForced());
  EXPECT_TRUE(
      eventually([&] { return Server.inFlightRequests() == 0; }));
  EXPECT_EQ(1u, Server.metrics().counter("serve.drain"));
}

TEST(SentinelServeTest, SecondDrainRequestForcesStructuredAbandon) {
  Oracle O = makeOracle();
  Latch Stall;
  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  Config.TestStallHook = [&Stall] { Stall.wait(); };
  AlignServer Server(Base, Config);

  Connection Conn(Server);
  Frame Response;
  std::string Error;
  bool Ok = false;
  std::thread ClientThread([&] {
    Ok = Conn.Client.call(
        makeFrame(FrameType::Align, encodeAlignRequest(O.Request)),
        Response, &Error);
  });

  ASSERT_TRUE(eventually([&] { return Server.inFlightRequests() == 1; }));
  // The double-SIGTERM escalation, through the same requestDrain hook
  // the signal watcher uses: first call drains, second call forces.
  Server.requestDrain();
  Server.requestDrain();
  EXPECT_TRUE(Server.drainForced());

  // The parked request is answered *now*, with a structured error frame
  // — never a hung client, never a silently dropped connection.
  ClientThread.join();
  ASSERT_TRUE(Ok) << Error;
  ASSERT_EQ(FrameType::Error, Response.Type);
  FrameError Code = FrameError::None;
  std::string Message;
  ASSERT_TRUE(decodeErrorFrame(Response, Code, Message));
  EXPECT_EQ(FrameError::Internal, Code);
  EXPECT_NE(std::string::npos, Message.find("forced drain")) << Message;
  EXPECT_EQ(1u, Server.metrics().counter("serve.drain.forced"));

  // Unpark the worker: its late result is dropped (the response slot is
  // already taken), not delivered twice and not crashed on.
  Stall.release();
}

TEST(SentinelServeTest, WatchdogFlagsStuckRequestOnManualClock) {
  Oracle O = makeOracle(/*DeadlineMs=*/20);
  Latch Stall;
  ManualClock Clock(1000);
  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  Config.Clock = Clock.fn();
  Config.StuckGraceMs = 30;
  Config.StuckPollMs = 2;
  Config.TestStallHook = [&Stall] { Stall.wait(); };
  AlignServer Server(Base, Config);

  Connection Conn(Server);
  Frame Response;
  std::string Error;
  bool Ok = false;
  std::thread ClientThread([&] {
    Ok = Conn.Client.call(
        makeFrame(FrameType::Align, encodeAlignRequest(O.Request)),
        Response, &Error);
  });

  ASSERT_TRUE(eventually([&] { return Server.inFlightRequests() == 1; }));
  // Sit one tick short of deadline + grace: not stuck yet. The watchdog
  // scans in real time but judges on the injected clock, so this is a
  // stable state, not a lucky one.
  Clock.advance(49);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(1u, Server.inFlightRequests());
  EXPECT_EQ(0u, Server.metrics().counter("serve.stuck"));

  // One tick past deadline + grace: the watchdog abandons it.
  Clock.advance(1);
  ClientThread.join();
  ASSERT_TRUE(Ok) << Error;
  ASSERT_EQ(FrameType::Error, Response.Type);
  FrameError Code = FrameError::None;
  std::string Message;
  ASSERT_TRUE(decodeErrorFrame(Response, Code, Message));
  EXPECT_EQ(FrameError::Stuck, Code);
  EXPECT_NE(std::string::npos, Message.find("deadline")) << Message;
  EXPECT_EQ(1u, Server.metrics().counter("serve.stuck"));

  Stall.release();
}

TEST(SentinelServeTest, UnixSocketDrainExitCodesReflectCleanVsForced) {
  // Clean drain: request finishes inside the timeout -> exit 0.
  {
    Latch Stall;
    Oracle O = makeOracle();
    AlignmentOptions Base;
    ServeConfig Config;
    Config.Threads = 1;
    Config.TestStallHook = [&Stall] { Stall.wait(); };
    AlignServer Server(Base, Config);
    std::string Sock = chaosSockPath("clean");
    int Exit = -1;
    std::thread ServeThread(
        [&] { Exit = Server.serveUnixSocket(Sock); });

    ServeClient Client;
    RetryPolicy Wait;
    Wait.MaxAttempts = 200;
    Wait.InitialBackoffMs = 5;
    Wait.MaxBackoffMs = 5;
    std::string Error;
    ASSERT_TRUE(Client.connectUnixRetry(Sock, Wait, &Error)) << Error;

    std::string Report;
    bool Ok = false;
    std::thread ClientThread(
        [&] { Ok = Client.align(O.Request, Report, &Error); });
    ASSERT_TRUE(
        eventually([&] { return Server.inFlightRequests() == 1; }));
    Server.requestDrain();
    Stall.release();
    ClientThread.join();
    ASSERT_TRUE(Ok) << Error;
    EXPECT_EQ(O.Expected, Report);
    Client.close();
    ServeThread.join();
    EXPECT_EQ(0, Exit);
    EXPECT_FALSE(Server.drainForced());
  }

  // Forced drain (second request): abandoned in flight -> exit 4.
  {
    Latch Stall;
    Oracle O = makeOracle();
    AlignmentOptions Base;
    ServeConfig Config;
    Config.Threads = 1;
    Config.TestStallHook = [&Stall] { Stall.wait(); };
    AlignServer Server(Base, Config);
    std::string Sock = chaosSockPath("forced");
    int Exit = -1;
    std::thread ServeThread(
        [&] { Exit = Server.serveUnixSocket(Sock); });

    ServeClient Client;
    RetryPolicy Wait;
    Wait.MaxAttempts = 200;
    Wait.InitialBackoffMs = 5;
    Wait.MaxBackoffMs = 5;
    std::string Error;
    ASSERT_TRUE(Client.connectUnixRetry(Sock, Wait, &Error)) << Error;

    Frame Response;
    bool Ok = false;
    std::thread ClientThread([&] {
      Ok = Client.call(
          makeFrame(FrameType::Align, encodeAlignRequest(O.Request)),
          Response, &Error);
    });
    ASSERT_TRUE(
        eventually([&] { return Server.inFlightRequests() == 1; }));
    Server.requestDrain();
    Server.requestDrain();
    ClientThread.join();
    Stall.release();
    ServeThread.join();
    EXPECT_EQ(4, Exit);
    EXPECT_TRUE(Server.drainForced());
    // The abandoned request still got a structured answer.
    ASSERT_TRUE(Ok) << Error;
    EXPECT_EQ(FrameType::Error, Response.Type);
    Client.close();
  }
}

TEST(SentinelServeTest, SigtermSelfPipeDrivesTheDrainStateMachine) {
  // The real signal path: installSignalDrain's handler writes to the
  // self-pipe, the watcher thread turns each byte into requestDrain().
  AlignmentOptions Base;
  ServeConfig Config;
  Config.Threads = 1;
  AlignServer Server(Base, Config);
  Server.installSignalDrain();

  ASSERT_EQ(0, ::raise(SIGTERM));
  EXPECT_TRUE(eventually([&] { return Server.draining(); }));
  EXPECT_FALSE(Server.drainForced());

  // Second SIGTERM escalates — the S3 contract.
  ASSERT_EQ(0, ::raise(SIGTERM));
  EXPECT_TRUE(eventually([&] { return Server.drainForced(); }));
}

TEST(SentinelServeTest, ConnectRetryBackoffIsDeterministic) {
  // All attempts fail (injected): the error names the site and the
  // attempt count, and the backoff sequence is the doubling ladder.
  std::vector<uint64_t> Sleeps;
  SleepFn Recorder = [&Sleeps](uint64_t Ms) { Sleeps.push_back(Ms); };
  RetryPolicy Policy;
  Policy.MaxAttempts = 4;
  Policy.InitialBackoffMs = 3;
  Policy.MaxBackoffMs = 7;
  {
    FaultInjector::ScopedFault Fault(FaultSite::ClientConnect,
                                     FaultSpec::always());
    ServeClient Client;
    std::string Error;
    EXPECT_FALSE(Client.connectUnixRetry("/nonexistent.sock", Policy,
                                         &Error, Recorder));
    EXPECT_NE(std::string::npos, Error.find("client.connect")) << Error;
    EXPECT_NE(std::string::npos, Error.find("after 4 attempts")) << Error;
  }
  EXPECT_EQ((std::vector<uint64_t>{3, 6, 7}), Sleeps);
}

TEST(SentinelServeTest, AlignWithRetrySurvivesServerRestart) {
  Oracle O = makeOracle();
  std::string Sock = chaosSockPath("restart");
  AlignmentOptions Base;

  RetryPolicy Wait;
  Wait.MaxAttempts = 200;
  Wait.InitialBackoffMs = 5;
  Wait.MaxBackoffMs = 5;

  ServeClient Client;
  std::string Error;

  // Server generation one: align once, then shut it down — the client
  // keeps its (now dead) connection.
  {
    ServeConfig Config;
    Config.Threads = 1;
    AlignServer Server(Base, Config);
    std::thread ServeThread([&] { Server.serveUnixSocket(Sock); });
    ASSERT_TRUE(Client.connectUnixRetry(Sock, Wait, &Error)) << Error;
    std::string Report;
    ASSERT_TRUE(Client.align(O.Request, Report, &Error)) << Error;
    EXPECT_EQ(O.Expected, Report);
    Frame Response;
    ASSERT_TRUE(Client.call(makeFrame(FrameType::Shutdown), Response,
                            &Error))
        << Error;
    EXPECT_EQ(FrameType::ShutdownOk, Response.Type);
    ServeThread.join();
  }

  // Server generation two on the same path. alignWithRetry's first
  // attempt fails on the dead connection, reconnects, and resends the
  // byte-identical request — the restart is invisible to the caller.
  {
    ServeConfig Config;
    Config.Threads = 1;
    AlignServer Server(Base, Config);
    std::thread ServeThread([&] { Server.serveUnixSocket(Sock); });
    EXPECT_TRUE(Client.connected()); // still holding generation one.
    std::string Report;
    ASSERT_TRUE(
        Client.alignWithRetry(Sock, O.Request, Report, Wait, &Error))
        << Error;
    EXPECT_EQ(O.Expected, Report);

    Frame Response;
    ASSERT_TRUE(Client.call(makeFrame(FrameType::Shutdown), Response,
                            &Error))
        << Error;
    ServeThread.join();
  }
}

TEST(SentinelServeTest, RequestFingerprintPinsWireBytes) {
  Oracle O = makeOracle();
  AlignRequest Same = O.Request;
  EXPECT_EQ(requestFingerprint(O.Request), requestFingerprint(Same));
  AlignRequest Different = O.Request;
  Different.Seed ^= 1;
  EXPECT_NE(requestFingerprint(O.Request), requestFingerprint(Different));
}
