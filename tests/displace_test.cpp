//===- tests/displace_test.cpp - Branch-displacement fixpoint tests -------===//
//
// The balign-displace contracts: shared address assignment agrees with
// the hand-rolled loops it replaced, the grow-until-fixpoint solve
// terminates on the least fixpoint (sound and minimal), the pipeline
// stays bit-identical at every thread count under a variable encoding,
// the verify pass catches tampered encodings, the cache fingerprint
// keys on the encoding parameters exactly when they can matter, and the
// serve extension block round-trips while legacy frames stay
// byte-identical.
//
//===--------------------------------------------------------------------===//

#include "objective/Displace.h"

#include "align/Pipeline.h"
#include "align/Reduction.h"
#include "analysis/PipelineVerifier.h"
#include "analysis/Verifier.h"
#include "cache/Fingerprint.h"
#include "objective/Penalty.h"
#include "profile/Trace.h"
#include "serve/Protocol.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

/// One random procedure plus a training profile collected from a
/// uniform-behavior trace; deterministic in the seed.
struct Sample {
  Procedure Proc{"s"};
  ProcedureProfile Train;
};

Sample makeSample(uint64_t Seed, unsigned Sites = 14) {
  Rng R(Seed);
  GenParams Params;
  Params.TargetBranchSites = Sites;
  Sample S;
  S.Proc = generateProcedure("s" + std::to_string(Seed), Params, R).Proc;
  Rng TraceRng(Seed * 977 + 3);
  TraceGenOptions TraceOptions;
  TraceOptions.BranchBudget = 400;
  S.Train = collectProfile(
      S.Proc, generateTrace(S.Proc, BranchBehavior::uniform(S.Proc), TraceRng,
                            TraceOptions));
  return S;
}

/// The Alpha model with the ShortLong encoding at the given range.
MachineModel shortLongModel(uint64_t Range) {
  MachineModel M = MachineModel::alpha21164();
  M.Encoding = BranchEncoding::ShortLong;
  M.ShortBranchRange = Range;
  return M;
}

/// A range small enough that random procedures of the default size
/// reliably push some branches long.
constexpr uint64_t TightRange = 16;

size_t countCheck(const DiagnosticEngine &Diags, CheckId Check) {
  size_t N = 0;
  for (const Diagnostic &D : Diags.diagnostics())
    N += D.Check == Check ? 1 : 0;
  return N;
}

const uint64_t CorpusSeeds[] = {3, 17, 29, 61, 101, 257};

//===--- Shared address assignment ---------------------------------------===//

// Under the fixed encoding the shared routine must reproduce the exact
// InstrCount * BytesPerInstr prefix sums the seven former call sites
// hand-rolled; any drift would silently corrupt every byte-distance
// consumer at once.
TEST(DisplaceAddressTest, FixedMatchesHandRolledPrefixSums) {
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    MachineModel Model = MachineModel::alpha21164();
    MaterializedLayout Mat =
        materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
    uint64_t Address = 0;
    for (const LayoutItem &Item : Mat.Items) {
      EXPECT_FALSE(Item.LongForm) << "seed " << Seed;
      EXPECT_EQ(Item.Address, Address) << "seed " << Seed;
      Address += uint64_t{Item.SizeInstrs} * BytesPerInstr;
    }
    EXPECT_EQ(Mat.TotalBytes, Address) << "seed " << Seed;
    EXPECT_EQ(Mat.NumLongBranches, 0u) << "seed " << Seed;
    for (BlockId B = 0; B != S.Proc.numBlocks(); ++B)
      EXPECT_EQ(blockBytes(S.Proc, B),
                uint64_t{S.Proc.block(B).InstrCount} * BytesPerInstr);
  }
}

TEST(DisplaceAddressTest, ItemBytesAddsLongFormGrowth) {
  MachineModel Model = shortLongModel(TightRange);
  Model.LongBranchExtraInstrs = 3;
  LayoutItem Item;
  Item.SizeInstrs = 5;
  EXPECT_EQ(itemBytes(Item, Model), 5 * BytesPerInstr);
  Item.LongForm = true;
  EXPECT_EQ(itemBytes(Item, Model), (5 + 3) * BytesPerInstr);
  EXPECT_EQ(instructionIndex(itemBytes(Item, Model)), 8u);
}

//===--- The displacement fixpoint ---------------------------------------===//

// Termination and determinism: re-solving from scratch converges within
// the |sites| + 1 round bound and lands on the exact same encoding
// (solveDisplacement is a pure function of its inputs).
TEST(DisplaceFixpointTest, TerminatesWithinSiteBoundAndIsDeterministic) {
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    MachineModel Model = shortLongModel(TightRange);
    MaterializedLayout Mat =
        materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
    MaterializedLayout Replay = Mat;
    DisplaceStats Stats = solveDisplacement(S.Proc, Replay, Model);
    size_t NumSites = collectBranchSites(S.Proc, Mat).size();
    EXPECT_LE(Stats.Iterations, NumSites + 1) << "seed " << Seed;
    EXPECT_EQ(Stats.NumLongBranches, Mat.NumLongBranches) << "seed " << Seed;
    EXPECT_EQ(Replay.TotalBytes, Mat.TotalBytes) << "seed " << Seed;
    ASSERT_EQ(Replay.Items.size(), Mat.Items.size());
    for (size_t I = 0; I != Mat.Items.size(); ++I) {
      EXPECT_EQ(Replay.Items[I].Address, Mat.Items[I].Address)
          << "seed " << Seed << " item " << I;
      EXPECT_EQ(Replay.Items[I].LongForm, Mat.Items[I].LongForm)
          << "seed " << Seed << " item " << I;
    }
  }
}

// Soundness and minimality at the fixpoint: every short branch is in
// range, and every long branch is out of range even at final addresses
// (monotone growth never shrinks a displacement, so a widened branch
// stays over the line — which is why displace.not-minimal can be a
// warning the solver itself never triggers).
TEST(DisplaceFixpointTest, FixpointIsSoundAndMinimal) {
  size_t LongSomewhere = 0;
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    MachineModel Model = shortLongModel(TightRange);
    MaterializedLayout Mat =
        materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
    for (const BranchSite &Site : collectBranchSites(S.Proc, Mat)) {
      uint64_t Disp =
          branchDisplacement(Mat, Model, Site.ItemIndex, Site.Target);
      if (Mat.Items[Site.ItemIndex].LongForm)
        EXPECT_GT(Disp, Model.ShortBranchRange) << "seed " << Seed;
      else
        EXPECT_LE(Disp, Model.ShortBranchRange) << "seed " << Seed;
    }
    LongSomewhere += Mat.NumLongBranches;
  }
  // The corpus must actually exercise the widening path.
  EXPECT_GT(LongSomewhere, 0u);
}

// Widening is monotone in the range: a larger short range can only keep
// more branches short.
TEST(DisplaceFixpointTest, LongCountMonotoneInShortRange) {
  const uint64_t Ranges[] = {0, 8, 32, 128, 1024, 1u << 20};
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    size_t PrevLong = SIZE_MAX;
    for (uint64_t Range : Ranges) {
      MachineModel Model = shortLongModel(Range);
      MaterializedLayout Mat =
          materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
      EXPECT_LE(Mat.NumLongBranches, PrevLong)
          << "seed " << Seed << " range " << Range;
      PrevLong = Mat.NumLongBranches;
    }
  }
}

// Degenerate golden: a range no displacement can exceed keeps every
// branch short, and the materialization is identical to the fixed
// encoding's, address for address.
TEST(DisplaceFixpointTest, AllInRangeMatchesFixedEncoding) {
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    MaterializedLayout Fixed = materializeLayout(
        S.Proc, Layout::original(S.Proc), S.Train, MachineModel::alpha21164());
    MaterializedLayout Wide =
        materializeLayout(S.Proc, Layout::original(S.Proc), S.Train,
                          shortLongModel(UINT64_MAX / 2));
    EXPECT_EQ(Wide.NumLongBranches, 0u) << "seed " << Seed;
    EXPECT_EQ(Wide.TotalBytes, Fixed.TotalBytes) << "seed " << Seed;
    ASSERT_EQ(Wide.Items.size(), Fixed.Items.size());
    for (size_t I = 0; I != Fixed.Items.size(); ++I) {
      EXPECT_EQ(Wide.Items[I].Address, Fixed.Items[I].Address)
          << "seed " << Seed << " item " << I;
      EXPECT_FALSE(Wide.Items[I].LongForm) << "seed " << Seed;
    }
  }
}

// Degenerate golden: range 0 widens exactly the branches with a nonzero
// displacement (a branch to the immediately following address needs no
// reach and legitimately stays short).
TEST(DisplaceFixpointTest, ZeroRangeWidensEveryPositiveDisplacement) {
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    MachineModel Model = shortLongModel(0);
    MaterializedLayout Mat =
        materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
    for (const BranchSite &Site : collectBranchSites(S.Proc, Mat)) {
      uint64_t Disp =
          branchDisplacement(Mat, Model, Site.ItemIndex, Site.Target);
      EXPECT_EQ(Mat.Items[Site.ItemIndex].LongForm, Disp > 0)
          << "seed " << Seed << " item " << Site.ItemIndex;
    }
  }
}

//===--- The verify pass --------------------------------------------------===//

TEST(DisplaceVerifyTest, CleanMaterializationsPass) {
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    for (const MachineModel &Model :
         {MachineModel::alpha21164(), shortLongModel(TightRange),
          shortLongModel(0)}) {
      DiagnosticEngine Diags;
      EXPECT_EQ(checkDisplacement(S.Proc, Layout::original(S.Proc), S.Train,
                                  Model, Diags),
                0u)
          << "seed " << Seed;
      EXPECT_EQ(Diags.warningCount(), 0u) << "seed " << Seed;
    }
  }
}

// Soundness tamper: shrink a long branch back to short. With addresses
// honestly recomputed for the tampered encoding, the branch no longer
// reaches its target — the exact bug class Boender & Sacerdoti Coen
// catalog in real assemblers.
TEST(DisplaceVerifyTest, UnwidenedLongBranchIsUnreachable) {
  Sample S = makeSample(17);
  MachineModel Model = shortLongModel(TightRange);
  MaterializedLayout Mat =
      materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
  ASSERT_GT(Mat.NumLongBranches, 0u);
  for (LayoutItem &Item : Mat.Items) {
    if (!Item.LongForm)
      continue;
    Item.LongForm = false;
    --Mat.NumLongBranches;
    break;
  }
  Mat.TotalBytes = assignItemAddresses(Mat.Items, Model);

  // Count the violations the tampered encoding really has, then demand
  // the pass reports exactly those.
  size_t Expected = 0;
  for (const BranchSite &Site : collectBranchSites(S.Proc, Mat))
    if (!Mat.Items[Site.ItemIndex].LongForm &&
        branchDisplacement(Mat, Model, Site.ItemIndex, Site.Target) >
            Model.ShortBranchRange)
      ++Expected;
  ASSERT_GT(Expected, 0u);

  DiagnosticEngine Diags;
  EXPECT_GT(checkDisplacement(S.Proc, Mat, Model, Diags), 0u);
  EXPECT_EQ(countCheck(Diags, CheckId::DisplaceUnreachable), Expected);
  EXPECT_EQ(countCheck(Diags, CheckId::DisplaceAddressMismatch), 0u);
}

// Minimality tamper: widen a branch that did not need it. The code
// still runs, so this must be a warning, not an error.
TEST(DisplaceVerifyTest, NeedlesslyWideBranchWarnsNotMinimal) {
  Sample S = makeSample(17);
  MachineModel Model = shortLongModel(UINT64_MAX / 2);
  MaterializedLayout Mat =
      materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
  std::vector<BranchSite> Sites = collectBranchSites(S.Proc, Mat);
  ASSERT_FALSE(Sites.empty());
  Mat.Items[Sites.front().ItemIndex].LongForm = true;
  ++Mat.NumLongBranches;
  Mat.TotalBytes = assignItemAddresses(Mat.Items, Model);

  DiagnosticEngine Diags;
  EXPECT_EQ(checkDisplacement(S.Proc, Mat, Model, Diags), 0u);
  EXPECT_EQ(countCheck(Diags, CheckId::DisplaceNotMinimal), 1u);
  EXPECT_EQ(Diags.warningCount(), 1u);
}

TEST(DisplaceVerifyTest, CorruptedAddressIsMismatch) {
  Sample S = makeSample(29);
  MachineModel Model = shortLongModel(TightRange);
  MaterializedLayout Mat =
      materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
  ASSERT_GT(Mat.Items.size(), 1u);
  Mat.Items.back().Address += BytesPerInstr;

  DiagnosticEngine Diags;
  EXPECT_GT(checkDisplacement(S.Proc, Mat, Model, Diags), 0u);
  EXPECT_GT(countCheck(Diags, CheckId::DisplaceAddressMismatch), 0u);
}

// Under the fixed encoding the displacement machinery must not have run
// at all: any long-form item is an error even if addresses add up.
TEST(DisplaceVerifyTest, LongFormUnderFixedIsError) {
  Sample S = makeSample(29);
  MachineModel Model = MachineModel::alpha21164();
  MaterializedLayout Mat =
      materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
  Mat.Items.front().LongForm = true;
  Mat.TotalBytes = assignItemAddresses(Mat.Items, Model);

  DiagnosticEngine Diags;
  EXPECT_GT(checkDisplacement(S.Proc, Mat, Model, Diags), 0u);
  EXPECT_GT(countCheck(Diags, CheckId::DisplaceAddressMismatch), 0u);
}

TEST(DisplaceVerifyTest, LongCountMismatchIsError) {
  Sample S = makeSample(61);
  MachineModel Model = shortLongModel(TightRange);
  MaterializedLayout Mat =
      materializeLayout(S.Proc, Layout::original(S.Proc), S.Train, Model);
  ++Mat.NumLongBranches;

  DiagnosticEngine Diags;
  EXPECT_GT(checkDisplacement(S.Proc, Mat, Model, Diags), 0u);
  EXPECT_GT(countCheck(Diags, CheckId::DisplaceAddressMismatch), 0u);
}

//===--- Pipeline integration ---------------------------------------------===//

namespace {

struct ProgramSample {
  Program Prog{"displace"};
  ProgramProfile Train;
};

ProgramSample makeProgram(uint64_t Seed, size_t NumProcs = 4) {
  ProgramSample P;
  for (size_t I = 0; I != NumProcs; ++I) {
    Sample S = makeSample(Seed + 31 * I);
    P.Prog.addProcedure(std::move(S.Proc));
    P.Train.Procs.push_back(std::move(S.Train));
  }
  return P;
}

} // namespace

// The determinism contract extends to the encoding-aware refit round:
// bit-identical layouts and penalties at every thread count.
TEST(DisplacePipelineTest, ShortLongBitIdenticalAcrossThreadCounts) {
  ProgramSample P = makeProgram(7);
  AlignmentOptions Options;
  Options.Model = shortLongModel(TightRange);
  Options.ComputeBounds = false;
  Options.Threads = 1;
  ProgramAlignment Reference = alignProgram(P.Prog, P.Train, Options);
  for (unsigned Threads : {2u, 8u}) {
    Options.Threads = Threads;
    ProgramAlignment Run = alignProgram(P.Prog, P.Train, Options);
    ASSERT_EQ(Run.Procs.size(), Reference.Procs.size());
    for (size_t I = 0; I != Run.Procs.size(); ++I) {
      EXPECT_EQ(Run.Procs[I].TspLayout.Order, Reference.Procs[I].TspLayout.Order)
          << "threads " << Threads << " proc " << I;
      EXPECT_EQ(Run.Procs[I].TspPenalty, Reference.Procs[I].TspPenalty)
          << "threads " << Threads << " proc " << I;
      EXPECT_EQ(Run.Procs[I].GreedyLayout.Order,
                Reference.Procs[I].GreedyLayout.Order)
          << "threads " << Threads << " proc " << I;
    }
  }
}

// The full verify-each battery (which replays stages — including the
// encoding refit in the determinism check — and runs the displace-check
// pass on every produced layout) accepts a short-long pipeline run.
TEST(DisplacePipelineTest, VerifierAcceptsShortLongAlignment) {
  ProgramSample P = makeProgram(13, 3);
  AlignmentOptions Options;
  Options.Model = shortLongModel(64);
  Options.ComputeBounds = false;
  DiagnosticEngine Diags;
  PipelineVerifier Verifier(Diags);
  EXPECT_EQ(Verifier.verifyInputs(P.Prog, P.Train), 0u);
  Verifier.install(Options);
  ProgramAlignment Result = alignProgram(P.Prog, P.Train, Options);
  EXPECT_EQ(Verifier.verifyAlignment(P.Prog, P.Train, Options.Model, Result),
            0u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(DisplacePipelineTest, RefitIsNoOpUnderFixedEncoding) {
  Sample S = makeSample(101);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(S.Proc, S.Train, Model);
  Layout L = Layout::original(S.Proc);
  uint64_t Penalty = evaluateLayout(S.Proc, L, Model, S.Train, S.Train);
  uint64_t Before = Penalty;
  IteratedOptOptions Solver;
  EXPECT_FALSE(
      refineLayoutForEncoding(S.Proc, S.Train, Model, Atsp, Solver, L, Penalty));
  EXPECT_EQ(Penalty, Before);
  EXPECT_EQ(L.Order, Layout::original(S.Proc).Order);
}

// The refit is a pure function (the determinism verify pass replays it
// verbatim) and never worsens the encoding-aware total it optimizes.
TEST(DisplacePipelineTest, RefitDeterministicAndNeverWorsens) {
  for (uint64_t Seed : CorpusSeeds) {
    Sample S = makeSample(Seed);
    MachineModel Model = shortLongModel(TightRange);
    AlignmentTsp Atsp = buildAlignmentTsp(S.Proc, S.Train, Model);
    IteratedOptOptions Solver;
    Layout L = Layout::original(S.Proc);
    uint64_t Penalty = evaluateLayout(S.Proc, L, Model, S.Train, S.Train);
    MaterializedLayout BeforeMat =
        materializeLayout(S.Proc, L, S.Train, Model);
    uint64_t BeforeTotal =
        Penalty + longBranchExtraPenalty(S.Proc, BeforeMat, S.Train, Model);

    Layout L1 = L, L2 = L;
    uint64_t P1 = Penalty, P2 = Penalty;
    bool R1 = refineLayoutForEncoding(S.Proc, S.Train, Model, Atsp, Solver, L1,
                                      P1);
    bool R2 = refineLayoutForEncoding(S.Proc, S.Train, Model, Atsp, Solver, L2,
                                      P2);
    EXPECT_EQ(R1, R2) << "seed " << Seed;
    EXPECT_EQ(L1.Order, L2.Order) << "seed " << Seed;
    EXPECT_EQ(P1, P2) << "seed " << Seed;

    ASSERT_TRUE(L1.isValid(S.Proc)) << "seed " << Seed;
    MaterializedLayout AfterMat =
        materializeLayout(S.Proc, L1, S.Train, Model);
    EXPECT_EQ(P1, evaluateLayout(S.Proc, L1, Model, S.Train, S.Train))
        << "seed " << Seed;
    uint64_t AfterTotal =
        P1 + longBranchExtraPenalty(S.Proc, AfterMat, S.Train, Model);
    EXPECT_LE(AfterTotal, BeforeTotal) << "seed " << Seed;
  }
}

//===--- Cache fingerprinting ---------------------------------------------===//

// Encoding knobs must be inert for fixed-encoding keys (they cannot
// affect the result) and result-affecting under short-long.
TEST(DisplaceFingerprintTest, FixedKeysIgnoreEncodingKnobs) {
  Sample S = makeSample(3);
  AlignmentOptions A;
  AlignmentOptions B;
  B.Model.ShortBranchRange = 64;
  B.Model.LongBranchExtraInstrs = 7;
  B.Model.LongBranchPenalty = 9;
  Fingerprint FA = fingerprintProcedureInputs(S.Proc, S.Train, A, 0);
  Fingerprint FB = fingerprintProcedureInputs(S.Proc, S.Train, B, 0);
  EXPECT_EQ(FA.str(), FB.str());
}

TEST(DisplaceFingerprintTest, ShortLongKeysOnEncodingKnobs) {
  Sample S = makeSample(3);
  AlignmentOptions Fixed;
  AlignmentOptions Short;
  Short.Model = shortLongModel(64);
  Fingerprint FFixed = fingerprintProcedureInputs(S.Proc, S.Train, Fixed, 0);
  Fingerprint FShort = fingerprintProcedureInputs(S.Proc, S.Train, Short, 0);
  EXPECT_NE(FFixed.str(), FShort.str());

  AlignmentOptions Wider = Short;
  Wider.Model.ShortBranchRange = 128;
  EXPECT_NE(fingerprintProcedureInputs(S.Proc, S.Train, Wider, 0).str(),
            FShort.str());

  AlignmentOptions Pricier = Short;
  Pricier.Model.LongBranchPenalty = 5;
  EXPECT_NE(fingerprintProcedureInputs(S.Proc, S.Train, Pricier, 0).str(),
            FShort.str());
}

//===--- Serve protocol extension ----------------------------------------===//

namespace {

AlignRequest basicRequest() {
  AlignRequest Req;
  Req.CfgText = "proc f { b0: instrs 4 ret }\n";
  return Req;
}

/// Byte offset of the flags byte in an encoded align request body
/// (seed u64 + budget u64 + deadline u32 + effort u8 + on-error u8).
constexpr size_t FlagsOffset = 8 + 8 + 4 + 1 + 1;

/// Byte size of the trailing encoding extension block.
constexpr size_t EncodingBlockBytes = 1 + 8 + 4 + 4;

} // namespace

TEST(DisplaceServeTest, EncodingBlockRoundTrips) {
  AlignRequest Req = basicRequest();
  Req.HasEncoding = true;
  Req.Encoding = BranchEncoding::ShortLong;
  Req.ShortBranchRange = 4096;
  Req.LongBranchExtraInstrs = 2;
  Req.LongBranchPenalty = 3;

  AlignRequest Out;
  std::string Error;
  ASSERT_TRUE(decodeAlignRequest(encodeAlignRequest(Req), Out, &Error))
      << Error;
  EXPECT_TRUE(Out.HasEncoding);
  EXPECT_EQ(Out.Encoding, BranchEncoding::ShortLong);
  EXPECT_EQ(Out.ShortBranchRange, 4096u);
  EXPECT_EQ(Out.LongBranchExtraInstrs, 2u);
  EXPECT_EQ(Out.LongBranchPenalty, 3u);
  EXPECT_EQ(Out.CfgText, Req.CfgText);
}

// Legacy compatibility: with the flag clear the encoding fields are not
// serialized, so pre-extension clients and the golden frame corpus see
// byte-identical bodies.
TEST(DisplaceServeTest, LegacyFramesAreByteIdentical) {
  AlignRequest Legacy = basicRequest();
  AlignRequest Tweaked = basicRequest();
  Tweaked.Encoding = BranchEncoding::ShortLong;
  Tweaked.ShortBranchRange = 1;
  Tweaked.LongBranchExtraInstrs = 99;
  EXPECT_EQ(encodeAlignRequest(Legacy), encodeAlignRequest(Tweaked));

  AlignRequest Out;
  ASSERT_TRUE(decodeAlignRequest(encodeAlignRequest(Legacy), Out, nullptr));
  EXPECT_FALSE(Out.HasEncoding);
  EXPECT_EQ(Out.Encoding, BranchEncoding::Fixed);
}

TEST(DisplaceServeTest, RejectsUnknownFlagBits) {
  std::string Body = encodeAlignRequest(basicRequest());
  Body[FlagsOffset] = static_cast<char>(Body[FlagsOffset] | 16);
  AlignRequest Out;
  std::string Error;
  EXPECT_FALSE(decodeAlignRequest(Body, Out, &Error));
  EXPECT_NE(Error.find("unknown flag bits"), std::string::npos) << Error;
}

TEST(DisplaceServeTest, RejectsTruncatedEncodingBlock) {
  AlignRequest Req = basicRequest();
  Req.HasEncoding = true;
  std::string Body = encodeAlignRequest(Req);
  AlignRequest Out;
  std::string Error;
  // Any truncation point inside the block must fail cleanly.
  for (size_t Cut = 1; Cut <= EncodingBlockBytes; ++Cut) {
    EXPECT_FALSE(
        decodeAlignRequest(Body.substr(0, Body.size() - Cut), Out, &Error))
        << "cut " << Cut;
  }
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
}

TEST(DisplaceServeTest, RejectsUnknownEncodingValue) {
  AlignRequest Req = basicRequest();
  Req.HasEncoding = true;
  std::string Body = encodeAlignRequest(Req);
  Body[Body.size() - EncodingBlockBytes] = 2; // Beyond ShortLong.
  AlignRequest Out;
  std::string Error;
  EXPECT_FALSE(decodeAlignRequest(Body, Out, &Error));
  EXPECT_NE(Error.find("unknown branch encoding"), std::string::npos) << Error;
}

TEST(DisplaceServeTest, RejectsOutOfRangeLongParameters) {
  for (bool TweakExtra : {true, false}) {
    AlignRequest Req = basicRequest();
    Req.HasEncoding = true;
    (TweakExtra ? Req.LongBranchExtraInstrs : Req.LongBranchPenalty) =
        (1u << 20) + 1;
    AlignRequest Out;
    std::string Error;
    EXPECT_FALSE(decodeAlignRequest(encodeAlignRequest(Req), Out, &Error));
    EXPECT_NE(Error.find("out of range"), std::string::npos) << Error;
  }
}

TEST(DisplaceServeTest, RejectsTrailingBytesAfterEncodingBlock) {
  AlignRequest Req = basicRequest();
  Req.HasEncoding = true;
  std::string Body = encodeAlignRequest(Req) + '\0';
  AlignRequest Out;
  std::string Error;
  EXPECT_FALSE(decodeAlignRequest(Body, Out, &Error));
  EXPECT_NE(Error.find("trailing"), std::string::npos) << Error;
}

} // namespace
