//===- tests/align_outcome_test.cpp - Trace-driven cost-model tests ------------===//

#include "align/OutcomeCosts.h"
#include "align/Penalty.h"
#include "align/Reduction.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "tsp/IteratedOpt.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

const MachineModel Alpha = MachineModel::alpha21164();

struct OutcomeFixture {
  Procedure Proc{"empty"};
  ProcedureProfile Profile;
  ExecutionTrace Trace;
  MaterializedLayout Mat;

  explicit OutcomeFixture(uint64_t Seed, unsigned Sites = 6,
                          uint64_t Budget = 2000) {
    Rng StructureRng(Seed * 3 + 7);
    GenParams Params;
    Params.TargetBranchSites = Sites;
    Params.MultiwayFraction = 0.1;
    GeneratedProcedure Gen = generateProcedure("o", Params, StructureRng);
    Proc = std::move(Gen.Proc);
    Rng TraceRng(Seed * 5 + 9);
    TraceGenOptions Options;
    Options.BranchBudget = Budget;
    Trace = generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                          Options);
    Profile = collectProfile(Proc, Trace);
    Mat = materializeLayout(Proc, Layout::original(Proc), Profile, Alpha);
  }
};

} // namespace

TEST(OutcomeCountsTest, SumsMatchEdgeProfile) {
  OutcomeFixture F(1);
  OutcomeCounts Outcomes = collectOutcomeCounts(F.Proc, F.Mat, F.Trace);
  for (BlockId B = 0; B != F.Proc.numBlocks(); ++B) {
    for (size_t S = 0; S != F.Proc.successors(B).size(); ++S) {
      EXPECT_EQ(Outcomes.Correct[B][S] + Outcomes.Incorrect[B][S],
                F.Profile.edgeCount(B, S))
          << "block " << B << " succ " << S;
    }
  }
}

TEST(OutcomeCountsTest, UnconditionalsAlwaysCorrect) {
  OutcomeFixture F(2);
  OutcomeCounts Outcomes = collectOutcomeCounts(F.Proc, F.Mat, F.Trace);
  for (BlockId B = 0; B != F.Proc.numBlocks(); ++B) {
    if (F.Proc.block(B).Kind != TerminatorKind::Unconditional)
      continue;
    EXPECT_EQ(Outcomes.Incorrect[B][0], 0u);
  }
}

TEST(OutcomeCountsTest, MultiwayPredictsMostCommonArm) {
  OutcomeFixture F(3, /*Sites=*/8);
  OutcomeCounts Outcomes = collectOutcomeCounts(F.Proc, F.Mat, F.Trace);
  for (BlockId B = 0; B != F.Proc.numBlocks(); ++B) {
    if (F.Proc.block(B).Kind != TerminatorKind::Multiway)
      continue;
    // Exactly one arm has Correct counts; it is the most executed one.
    size_t CorrectArms = 0;
    uint64_t CorrectCount = 0;
    for (size_t S = 0; S != F.Proc.successors(B).size(); ++S) {
      if (Outcomes.Correct[B][S] != 0) {
        ++CorrectArms;
        CorrectCount = Outcomes.Correct[B][S];
      }
    }
    if (F.Profile.blockCount(B) == 0)
      continue;
    EXPECT_LE(CorrectArms, 1u);
    for (size_t S = 0; S != F.Proc.successors(B).size(); ++S)
      EXPECT_LE(Outcomes.Incorrect[B][S], CorrectCount)
          << "predicted arm must be the most common";
  }
}

TEST(OutcomeCountsTest, WellPredictedLoopsBeatStaticAssumption) {
  // A 90%-biased loop: the bimodal predictor mispredicts roughly the
  // minority executions, like the static assumption — but a strictly
  // alternating branch fools the 2-bit counter far more than a static
  // majority prediction would. Verify the counters behave sanely on a
  // hand-built alternating trace.
  CFGBuilder B("alt");
  BlockId C = B.cond(2);
  BlockId T = B.jump(1);
  BlockId R = B.ret(1);
  B.branches(C, T, R);
  B.edge(T, C);
  Procedure Proc = B.take();
  // Trace: C T C T ... C R repeated (alternating taken/not-taken at C
  // would need 2 successors swapping; here C->T dominates, so the
  // predictor should learn it).
  ExecutionTrace Trace;
  for (int Rep = 0; Rep != 50; ++Rep) {
    for (int Iter = 0; Iter != 9; ++Iter) {
      Trace.Blocks.push_back(C);
      Trace.Blocks.push_back(T);
    }
    Trace.Blocks.push_back(C);
    Trace.Blocks.push_back(R);
    ++Trace.Invocations;
  }
  ProcedureProfile Profile = collectProfile(Proc, Trace);
  MaterializedLayout Mat =
      materializeLayout(Proc, Layout::original(Proc), Profile, Alpha);
  OutcomeCounts Outcomes = collectOutcomeCounts(Proc, Mat, Trace);
  // The hot edge C->T is learned: nearly all correct.
  EXPECT_GT(Outcomes.Correct[C][0], 400u);
  // The loop exits are the surprising direction: mostly mispredicted.
  EXPECT_GT(Outcomes.Incorrect[C][1], Outcomes.Correct[C][1]);
}

TEST(OutcomeTspTest, StructureMatchesStaticReduction) {
  OutcomeFixture F(4);
  OutcomeCounts Outcomes = collectOutcomeCounts(F.Proc, F.Mat, F.Trace);
  AlignmentTsp Dynamic = buildOutcomeTsp(F.Proc, Outcomes, Alpha);
  AlignmentTsp Static = buildAlignmentTsp(F.Proc, F.Profile, Alpha);
  EXPECT_EQ(Dynamic.Tsp.numCities(), Static.Tsp.numCities());
  EXPECT_EQ(Dynamic.DummyCity, Static.DummyCity);
  EXPECT_EQ(Dynamic.Tsp.cost(Dynamic.DummyCity, F.Proc.entry()), 0);
  // Entry pin dominates real rows in both.
  for (BlockId B = 1; B != F.Proc.numBlocks(); ++B)
    EXPECT_EQ(Dynamic.Tsp.cost(Dynamic.DummyCity, B), Dynamic.EntryPin);
}

TEST(OutcomeTspTest, SolvableAndLayoutValid) {
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    OutcomeFixture F(Seed * 11);
    OutcomeCounts Outcomes = collectOutcomeCounts(F.Proc, F.Mat, F.Trace);
    AlignmentTsp Atsp = buildOutcomeTsp(F.Proc, Outcomes, Alpha);
    IteratedOptOptions Options;
    Options.Seed = Seed;
    DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, Options);
    Layout L = layoutFromTour(F.Proc, Atsp, Solution.Tour);
    EXPECT_TRUE(L.isValid(F.Proc));
    EXPECT_GE(Solution.Cost, 0);
  }
}

TEST(OutcomeTspTest, PerfectPredictionLeavesOnlyStructuralCosts) {
  // With every conditional outcome correct, the only penalties left are
  // taken-branch misfetches and jump costs — mispredicts contribute 0.
  CFGBuilder B("perfect");
  BlockId C = B.cond(2);
  BlockId T = B.jump(1);
  BlockId E = B.ret(1);
  B.branches(C, T, E);
  B.edge(T, E);
  Procedure Proc = B.take();
  OutcomeCounts Outcomes = OutcomeCounts::zeroed(Proc);
  Outcomes.Correct[C] = {70, 30};
  Outcomes.Correct[T] = {70};
  AlignmentTsp Atsp = buildOutcomeTsp(Proc, Outcomes, Alpha);
  // Layout C,T: T falls through (70 x pNN = 0), E taken-correct
  // (30 x pTT = 30).
  EXPECT_EQ(Atsp.Tsp.cost(C, T), 30);
  // Layout C,E: E falls through free, T taken-correct 70.
  EXPECT_EQ(Atsp.Tsp.cost(C, E), 70);
}
