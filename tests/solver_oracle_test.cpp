//===- tests/solver_oracle_test.cpp - Differential oracle for the solver ------===//
//
// Differential testing of iterated 3-Opt against the exact Held-Karp DP
// (tsp/Exact.h) on every small instance we can afford to enumerate: the
// paper claims near-optimality, and on N <= 10 the protocol-default
// solver must be *exactly* optimal. Families cover the shapes that
// historically break local search: heavy asymmetry (the directed ->
// symmetric transform must preserve orientation), big-M "needle"
// instances (one cheap Hamiltonian cycle hidden among forbidden-grade
// costs), and all-ties instances (the canonical start must win so
// compiler order is kept).
//
// The effort ladder relies on a structural property of solveDirectedTsp:
// per-run RNG streams are forked from the root seed in run order, so a
// config that only *appends* runs (more greedy/NN starts) or *extends*
// runs (more kicks per run) preserves every earlier run's trajectory as
// a prefix. Under that discipline more effort can never worsen the
// result, and the test asserts it.
//
//===--------------------------------------------------------------------===//

#include "support/Random.h"
#include "tsp/Construct.h"
#include "tsp/Exact.h"
#include "tsp/Instance.h"
#include "tsp/IteratedOpt.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

/// Uniform random directed instance with costs in [0, MaxCost).
DirectedTsp randomInstance(size_t N, uint64_t MaxCost, Rng &R) {
  DirectedTsp D(N);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        D.setCost(I, J, static_cast<int64_t>(R.nextBelow(MaxCost)));
  return D;
}

/// Strongly asymmetric: each unordered pair gets one cheap and one
/// expensive direction, so a solver that loses orientation information
/// in the symmetric transform pays immediately.
DirectedTsp asymmetricInstance(size_t N, Rng &R) {
  DirectedTsp D(N);
  for (City I = 0; I != N; ++I)
    for (City J = static_cast<City>(I + 1); J != N; ++J) {
      int64_t Cheap = static_cast<int64_t>(R.nextBelow(50));
      int64_t Dear = 10000 + static_cast<int64_t>(R.nextBelow(10000));
      if (R.nextBool(0.5)) {
        D.setCost(I, J, Cheap);
        D.setCost(J, I, Dear);
      } else {
        D.setCost(I, J, Dear);
        D.setCost(J, I, Cheap);
      }
    }
  return D;
}

/// Big-M heavy: every edge costs BigM except a hidden random Hamiltonian
/// cycle (cost 0..9) and a few decoy edges (cost ~BigM/2). The optimum
/// is (usually) the needle; the solver must find it, not an
/// almost-everywhere-forbidden tour.
DirectedTsp bigMInstance(size_t N, Rng &R) {
  constexpr int64_t BigM = 1000000000;
  DirectedTsp D(N);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        D.setCost(I, J, BigM);
  std::vector<City> Needle(N);
  for (City I = 0; I != N; ++I)
    Needle[I] = I;
  R.shuffle(Needle);
  for (size_t I = 0; I != N; ++I)
    D.setCost(Needle[I], Needle[(I + 1) % N],
              static_cast<int64_t>(R.nextBelow(10)));
  for (int Decoy = 0; Decoy != 3; ++Decoy) {
    City A = static_cast<City>(R.nextIndex(N));
    City B = static_cast<City>(R.nextIndex(N));
    if (A != B)
      D.setCost(A, B, BigM / 2);
  }
  return D;
}

/// All off-diagonal costs identical: every tour ties.
DirectedTsp allTiesInstance(size_t N, int64_t Cost) {
  DirectedTsp D(N);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        D.setCost(I, J, Cost);
  return D;
}

/// Solves with the paper-protocol defaults and asserts exact optimality
/// (differentially against the DP) plus tour validity.
void expectOptimal(const DirectedTsp &D, const char *Family) {
  int64_t Optimum = solveExactDirected(D);
  DtspSolution Solution = solveDirectedTsp(D, IteratedOptOptions());
  EXPECT_TRUE(isValidTour(Solution.Tour, D.numCities())) << Family;
  EXPECT_EQ(D.tourCost(Solution.Tour), Solution.Cost)
      << Family << ": reported cost must match its tour";
  EXPECT_EQ(Solution.Cost, Optimum)
      << Family << " N=" << D.numCities()
      << ": iterated 3-Opt missed the DP optimum";
}

} // namespace

TEST(SolverOracleTest, RandomInstancesMatchExactOptimum) {
  Rng R(0x0bac1e);
  for (size_t N = 2; N <= 10; ++N)
    for (int Rep = 0; Rep != 15; ++Rep)
      expectOptimal(randomInstance(N, 1000, R), "uniform");
}

TEST(SolverOracleTest, SmallCostRangesMatchExactOptimum) {
  // Tiny cost alphabets produce massive tie plateaus; the solver must
  // still land on an optimal representative.
  Rng R(0x7ab1e);
  for (size_t N = 4; N <= 10; ++N)
    for (int Rep = 0; Rep != 5; ++Rep)
      expectOptimal(randomInstance(N, 3, R), "tie-plateau");
}

TEST(SolverOracleTest, AsymmetricInstancesMatchExactOptimum) {
  Rng R(0xa5b3);
  for (size_t N = 4; N <= 10; ++N)
    for (int Rep = 0; Rep != 5; ++Rep)
      expectOptimal(asymmetricInstance(N, R), "asymmetric");
}

TEST(SolverOracleTest, BigMNeedleInstancesMatchExactOptimum) {
  Rng R(0xb16);
  for (size_t N = 4; N <= 10; ++N)
    for (int Rep = 0; Rep != 5; ++Rep)
      expectOptimal(bigMInstance(N, R), "big-M");
}

TEST(SolverOracleTest, AllTiesKeepCanonicalOrderAndAllRunsTie) {
  for (size_t N = 2; N <= 10; ++N)
    for (int64_t Cost : {int64_t(0), int64_t(7)}) {
      DirectedTsp D = allTiesInstance(N, Cost);
      int64_t Optimum = solveExactDirected(D);
      DtspSolution Solution = solveDirectedTsp(D, IteratedOptOptions());
      EXPECT_EQ(Solution.Cost, Optimum);
      EXPECT_EQ(Solution.Cost, static_cast<int64_t>(N) * Cost);
      EXPECT_EQ(Solution.Tour, canonicalTour(N))
          << "ties must preserve compiler order (N=" << N << ")";
      EXPECT_EQ(Solution.RunsFindingBest, Solution.NumRuns);
    }
}

TEST(SolverOracleTest, MoreEffortNeverWorsens) {
  // Ladder steps are ordered so each one either appends runs after all
  // existing runs or lengthens runs in place — the monotone-safe
  // directions (see the file comment). Step D is the paper default, so
  // its cost is also pinned to the DP optimum.
  IteratedOptOptions A;
  A.GreedyStarts = 1;
  A.NearestNeighborStarts = 0;
  A.IterationsFactor = 0.5;
  A.MinIterationsPerRun = 2;

  IteratedOptOptions B = A;
  B.GreedyStarts = 3;

  IteratedOptOptions C = B;
  C.IterationsFactor = 2.0;
  C.MinIterationsPerRun = 30;

  IteratedOptOptions D; // Paper defaults: G=5, NN=4, canonical, 2N kicks.

  Rng R(0x3ff027);
  for (size_t N : {6, 8, 10})
    for (int Rep = 0; Rep != 5; ++Rep) {
      DirectedTsp Inst = randomInstance(N, 500, R);
      int64_t CostA = solveDirectedTsp(Inst, A).Cost;
      int64_t CostB = solveDirectedTsp(Inst, B).Cost;
      int64_t CostC = solveDirectedTsp(Inst, C).Cost;
      int64_t CostD = solveDirectedTsp(Inst, D).Cost;
      EXPECT_GE(CostA, CostB) << "appending greedy starts worsened N=" << N;
      EXPECT_GE(CostB, CostC) << "longer runs worsened N=" << N;
      EXPECT_GE(CostC, CostD) << "full protocol worsened N=" << N;
      EXPECT_EQ(CostD, solveExactDirected(Inst));
    }
}
