//===- tests/shield_pipeline_test.cpp - failure isolation & the ladder ------===//
//
// Pipeline-level tests for balign-shield: per-procedure failure
// isolation, the graceful-degradation ladder (iterated 3-Opt -> greedy
// -> original), the three OnErrorPolicy modes, deterministic deadline
// and resource-cap trips, failure determinism across thread counts, and
// the fallback-results-are-never-cached rule.
//
//===--------------------------------------------------------------------===//

#include "align/Pipeline.h"
#include "analysis/PipelineVerifier.h"
#include "ir/CFGBuilder.h"
#include "profile/Trace.h"
#include "robust/FaultInjector.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <memory>

using namespace balign;

namespace {

using ScopedFault = FaultInjector::ScopedFault;

Program twoProcs(uint64_t Seed) {
  Program Prog("shielded");
  for (int P = 0; P != 2; ++P) {
    Rng R(Seed + P);
    GenParams Params;
    Params.TargetBranchSites = 5;
    Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
  }
  return Prog;
}

ProgramProfile profileAll(const Program &Prog, uint64_t Seed) {
  ProgramProfile Train;
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    Rng TraceRng(Seed + P);
    TraceGenOptions Options;
    Options.BranchBudget = 300;
    Train.Procs.push_back(collectProfile(
        Prog.proc(P), generateTrace(Prog.proc(P),
                                    BranchBehavior::uniform(Prog.proc(P)),
                                    TraceRng, Options)));
  }
  return Train;
}

/// A ProcedureResultCache that never hits and counts store offers, for
/// asserting the never-cache-fallbacks rule without the cache library.
class CountingCache : public ProcedureResultCache {
public:
  bool lookup(const Procedure &, const ProcedureProfile &,
              const AlignmentOptions &, size_t,
              ProcedureAlignment &) override {
    return false;
  }
  void store(const Procedure &, const ProcedureProfile &,
             const AlignmentOptions &, size_t,
             const ProcedureAlignment &) override {
    ++Stores;
  }
  unsigned Stores = 0;
};

} // namespace

TEST(ShieldPipelineTest, SolverFaultFallsBackToGreedy) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(3);
  ProgramProfile Train = profileAll(Prog, 9);
  AlignmentOptions Options;
  Options.ComputeBounds = true;
  Options.OnError = OnErrorPolicy::Fallback;

  ScopedFault Fault(FaultSite::TspSolve, FaultSpec::always());
  ProgramAlignment Result = alignProgram(Prog, Train, Options);

  ASSERT_EQ(Result.Failures.size(), 2u);
  EXPECT_EQ(Result.Failures.summary(Prog.numProcedures()),
            "procs=2 tsp=0 greedy=2 original=0 skipped=0 failures=2");
  for (size_t P = 0; P != 2; ++P) {
    const ProcedureAlignment &PA = Result.Procs[P];
    const ProcedureFailure &F = Result.Failures.Failures[P];
    EXPECT_EQ(F.ProcIndex, P) << "failures arrive in program order";
    EXPECT_EQ(F.ProcName, Prog.proc(P).getName());
    EXPECT_EQ(F.Kind, FailureKind::Fault);
    EXPECT_EQ(F.Rung, LadderRung::Greedy);
    EXPECT_FALSE(F.Skipped);
    EXPECT_EQ(PA.Rung, LadderRung::Greedy);
    // The greedy rung ships in the chosen (Tsp) slot.
    EXPECT_EQ(PA.TspLayout.Order, PA.GreedyLayout.Order);
    EXPECT_EQ(PA.TspPenalty, PA.GreedyPenalty);
    EXPECT_EQ(PA.SolverRuns, 0u) << "full-path stats are reset";
    EXPECT_EQ(PA.Bounds.AssignmentCycles, 0u);
  }
}

TEST(ShieldPipelineTest, LadderBottomsOutAtOriginalWhenGreedyAlsoFails) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(5);
  ProgramProfile Train = profileAll(Prog, 11);
  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;

  ScopedFault SolveFault(FaultSite::TspSolve, FaultSpec::always());
  ScopedFault GreedyFault(FaultSite::AlignGreedy, FaultSpec::always());
  ProgramAlignment Result = alignProgram(Prog, Train, Options);

  ASSERT_EQ(Result.Failures.size(), 2u);
  for (size_t P = 0; P != 2; ++P) {
    const ProcedureAlignment &PA = Result.Procs[P];
    EXPECT_EQ(PA.Rung, LadderRung::Original);
    EXPECT_EQ(Result.Failures.Failures[P].Rung, LadderRung::Original);
    EXPECT_EQ(PA.TspLayout.Order, PA.OriginalLayout.Order);
    EXPECT_EQ(PA.TspPenalty, PA.OriginalPenalty);
    EXPECT_EQ(PA.GreedyLayout.Order, PA.OriginalLayout.Order);
  }
  // The greedy fault fired in the full path: the first failure names the
  // earliest stage that threw (greedy runs before the solver).
  EXPECT_EQ(Result.Failures.Failures[0].Kind, FailureKind::Fault);
  EXPECT_NE(Result.Failures.Failures[0].What.find("align.greedy"),
            std::string::npos);
}

TEST(ShieldPipelineTest, SkipPolicyKeepsOriginalWithoutWalkingTheLadder) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(7);
  ProgramProfile Train = profileAll(Prog, 13);
  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Skip;

  ScopedFault Fault(FaultSite::TspSolve, FaultSpec::always());
  ProgramAlignment Result = alignProgram(Prog, Train, Options);

  ASSERT_EQ(Result.Failures.size(), 2u);
  EXPECT_EQ(Result.Failures.countSkipped(), 2u);
  EXPECT_EQ(Result.Failures.summary(2),
            "procs=2 tsp=0 greedy=0 original=2 skipped=2 failures=2");
  for (size_t P = 0; P != 2; ++P) {
    EXPECT_TRUE(Result.Failures.Failures[P].Skipped);
    EXPECT_EQ(Result.Procs[P].Rung, LadderRung::Original);
    EXPECT_EQ(Result.Procs[P].TspLayout.Order,
              Result.Procs[P].OriginalLayout.Order);
  }
}

TEST(ShieldPipelineTest, AbortPolicyThrowsTheFirstFailureInProgramOrder) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(9);
  ProgramProfile Train = profileAll(Prog, 15);
  AlignmentOptions Options; // OnError defaults to Abort.

  ScopedFault Fault(FaultSite::TspSolve, FaultSpec::always());
  for (unsigned Threads : {1u, 4u}) {
    Options.Threads = Threads;
    try {
      alignProgram(Prog, Train, Options);
      FAIL() << "expected AlignmentAborted (threads=" << Threads << ")";
    } catch (const AlignmentAborted &E) {
      // Both procedures fail; the abort must carry the first in program
      // order at any thread count.
      EXPECT_EQ(E.failure().ProcIndex, 0u) << "threads=" << Threads;
      EXPECT_EQ(E.failure().Kind, FailureKind::Fault);
      EXPECT_NE(std::string(E.what()).find("p0"), std::string::npos);
      EXPECT_NE(std::string(E.what()).find("tsp.solve"), std::string::npos);
    }
  }
}

TEST(ShieldPipelineTest, PerProcedureBudgetTripsOnAnInjectedClock) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(11);
  ProgramProfile Train = profileAll(Prog, 17);
  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;
  Options.ProcBudgetMs = 5;
  // Every clock read advances 10ms, so each procedure's budget has
  // expired by its first solver poll — deterministically, no sleeping.
  auto Ticks = std::make_shared<uint64_t>(0);
  Options.Clock = [Ticks] { return *Ticks += 10; };

  ProgramAlignment Result = alignProgram(Prog, Train, Options);
  ASSERT_EQ(Result.Failures.size(), 2u);
  for (size_t P = 0; P != 2; ++P) {
    EXPECT_EQ(Result.Failures.Failures[P].Kind, FailureKind::Deadline);
    EXPECT_NE(Result.Failures.Failures[P].What.find("deadline"),
              std::string::npos);
    EXPECT_EQ(Result.Procs[P].Rung, LadderRung::Greedy)
        << "greedy is not budget-polled, so the ladder still ships it";
  }
}

TEST(ShieldPipelineTest, ExpiredRunDeadlineDegradesEveryProcedure) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(13);
  ProgramProfile Train = profileAll(Prog, 19);
  ManualClock Clock;
  Deadline RunDeadline(5, Clock.fn());
  Clock.advance(10); // The whole-run deadline is already gone.

  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;
  Options.RunDeadline = &RunDeadline;
  ProgramAlignment Result = alignProgram(Prog, Train, Options);

  ASSERT_EQ(Result.Failures.size(), 2u);
  for (const ProcedureFailure &F : Result.Failures.Failures) {
    EXPECT_EQ(F.Kind, FailureKind::Deadline);
    EXPECT_NE(F.What.find("whole-run alignment"), std::string::npos);
    EXPECT_EQ(F.Rung, LadderRung::Greedy);
  }

  // Under Abort the same expiry kills the run with the first procedure.
  Options.OnError = OnErrorPolicy::Abort;
  EXPECT_THROW(alignProgram(Prog, Train, Options), AlignmentAborted);
}

TEST(ShieldPipelineTest, ResourceCapsTripAsResourceCapFailures) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(15);
  ProgramProfile Train = profileAll(Prog, 21);
  ASSERT_GT(Prog.proc(0).numBlocks(), 2u);

  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;
  Options.MaxTspCities = 2; // Blocks + dummy always exceeds this here.
  ProgramAlignment Capped = alignProgram(Prog, Train, Options);
  ASSERT_EQ(Capped.Failures.size(), 2u);
  for (const ProcedureFailure &F : Capped.Failures.Failures) {
    EXPECT_EQ(F.Kind, FailureKind::ResourceCap);
    EXPECT_NE(F.What.find("cities"), std::string::npos);
  }

  Options.MaxTspCities = 0;
  Options.MaxTspMatrixBytes = 16; // Far below any real 2Nx2N matrix.
  ProgramAlignment ByteCapped = alignProgram(Prog, Train, Options);
  ASSERT_EQ(ByteCapped.Failures.size(), 2u);
  for (const ProcedureFailure &F : ByteCapped.Failures.Failures) {
    EXPECT_EQ(F.Kind, FailureKind::ResourceCap);
    EXPECT_NE(F.What.find("bytes"), std::string::npos);
  }

  // Generous caps change nothing.
  AlignmentOptions Loose;
  Loose.MaxTspCities = 1 << 20;
  Loose.MaxTspMatrixBytes = size_t(1) << 40;
  AlignmentOptions Plain;
  ProgramAlignment A = alignProgram(Prog, Train, Loose);
  ProgramAlignment B = alignProgram(Prog, Train, Plain);
  EXPECT_TRUE(A.Failures.empty());
  for (size_t P = 0; P != 2; ++P)
    EXPECT_EQ(A.Procs[P].TspLayout.Order, B.Procs[P].TspLayout.Order);
}

TEST(ShieldPipelineTest, DegradationIsBitIdenticalAcrossThreadCounts) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(17);
  ProgramProfile Train = profileAll(Prog, 23);
  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;

  ScopedFault Fault(FaultSite::TspSolve, FaultSpec::always());
  Options.Threads = 1;
  ProgramAlignment Serial = alignProgram(Prog, Train, Options);
  Options.Threads = 8;
  ProgramAlignment Parallel = alignProgram(Prog, Train, Options);

  ASSERT_EQ(Serial.Failures.size(), Parallel.Failures.size());
  for (size_t F = 0; F != Serial.Failures.size(); ++F) {
    EXPECT_EQ(Serial.Failures.Failures[F].ProcIndex,
              Parallel.Failures.Failures[F].ProcIndex);
    EXPECT_EQ(Serial.Failures.Failures[F].Kind,
              Parallel.Failures.Failures[F].Kind);
    EXPECT_EQ(Serial.Failures.Failures[F].Rung,
              Parallel.Failures.Failures[F].Rung);
  }
  for (size_t P = 0; P != 2; ++P) {
    EXPECT_EQ(Serial.Procs[P].TspLayout.Order,
              Parallel.Procs[P].TspLayout.Order);
    EXPECT_EQ(Serial.Procs[P].TspPenalty, Parallel.Procs[P].TspPenalty);
    EXPECT_EQ(Serial.Procs[P].Rung, Parallel.Procs[P].Rung);
  }
}

TEST(ShieldPipelineTest, PoliciesAreBitIdenticalWhenNothingFails) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(19);
  ProgramProfile Train = profileAll(Prog, 25);

  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Abort;
  ProgramAlignment Baseline = alignProgram(Prog, Train, Options);
  EXPECT_TRUE(Baseline.Failures.empty());

  for (OnErrorPolicy Policy :
       {OnErrorPolicy::Fallback, OnErrorPolicy::Skip}) {
    Options.OnError = Policy;
    ProgramAlignment Other = alignProgram(Prog, Train, Options);
    EXPECT_TRUE(Other.Failures.empty());
    for (size_t P = 0; P != 2; ++P) {
      EXPECT_EQ(Other.Procs[P].TspLayout.Order,
                Baseline.Procs[P].TspLayout.Order);
      EXPECT_EQ(Other.Procs[P].GreedyLayout.Order,
                Baseline.Procs[P].GreedyLayout.Order);
      EXPECT_EQ(Other.Procs[P].TspPenalty, Baseline.Procs[P].TspPenalty);
      EXPECT_EQ(Other.Procs[P].Rung, LadderRung::Tsp);
    }
  }
}

TEST(ShieldPipelineTest, FallbackResultsAreNeverCached) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(21);
  ProgramProfile Train = profileAll(Prog, 27);
  CountingCache Cache;
  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;
  Options.Cache = CacheMode::Memory;
  Options.CacheImpl = &Cache;

  {
    ScopedFault Fault(FaultSite::TspSolve, FaultSpec::always());
    ProgramAlignment Degraded = alignProgram(Prog, Train, Options);
    ASSERT_EQ(Degraded.Failures.size(), 2u);
    EXPECT_EQ(Cache.Stores, 0u)
        << "a degraded result is not what recomputation would produce";
  }
  // With the fault gone, every full-path result is offered for caching.
  ProgramAlignment Clean = alignProgram(Prog, Train, Options);
  EXPECT_TRUE(Clean.Failures.empty());
  EXPECT_EQ(Cache.Stores, 2u);
}

TEST(ShieldPipelineTest, UnprofiledProceduresBypassTheShield) {
  FaultInjector::instance().reset();
  Program Prog = twoProcs(23);
  ProgramProfile Train;
  {
    Rng TraceRng(29);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 300;
    Train.Procs.push_back(collectProfile(
        Prog.proc(0), generateTrace(Prog.proc(0),
                                    BranchBehavior::uniform(Prog.proc(0)),
                                    TraceRng, TraceOptions)));
  }
  Train.Procs.push_back(ProcedureProfile::zeroed(Prog.proc(1)));

  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;
  // pool.task guards every shielded task; the unprofiled keep-original
  // path runs before the probe, so only the profiled procedure fails.
  ScopedFault Fault(FaultSite::PoolTask, FaultSpec::always());
  ProgramAlignment Result = alignProgram(Prog, Train, Options);

  ASSERT_EQ(Result.Failures.size(), 1u);
  EXPECT_EQ(Result.Failures.Failures[0].ProcIndex, 0u);
  EXPECT_EQ(Result.Procs[0].Rung, LadderRung::Greedy);
  EXPECT_EQ(Result.Procs[1].Rung, LadderRung::Tsp)
      << "keeping an unprofiled layout is designed behavior, not a failure";
  EXPECT_EQ(Result.Procs[1].TspLayout.Order,
            Layout::original(Prog.proc(1)).Order);
}

TEST(ShieldPipelineTest, VerifyReplaysDoNotSkewFaultHitsUnderDeadline) {
  // The satellite regression: --verify=full replays matrix builds and
  // solves through the same production stages that carry fault probes,
  // under ScopedSuppress, while a whole-run deadline may fire
  // mid-procedure. Suppressed replays must neither consume per-site hit
  // counters (skewing a rate=N/D@SEED sequence for later procedures)
  // nor poll the deadline clock (shifting when it expires) — so a
  // verified run and a plain run must observe identical hits, rungs,
  // and failures.
  FaultInjector::instance().reset();
  Program Prog = twoProcs(23);
  ProgramProfile Train = profileAll(Prog, 29);

  struct Outcome {
    uint64_t SolveHits = 0;
    uint64_t TransformHits = 0;
    std::vector<LadderRung> Rungs;
    size_t Failures = 0;
    bool DeadlineTripped = false;
  };
  // A counting clock makes "the deadline fires mid-procedure"
  // deterministic at Threads=1: every poll advances time by 1ms, so
  // expiry lands on the Nth poll regardless of host speed.
  auto runOnce = [&](bool Verified) {
    uint64_t Polls = 0;
    ClockFn Clock = [&Polls] { return ++Polls; };
    Deadline RunDeadline(60, Clock);
    AlignmentOptions Options;
    Options.ComputeBounds = true;
    Options.OnError = OnErrorPolicy::Fallback;
    Options.Threads = 1;
    Options.Clock = Clock;
    Options.RunDeadline = &RunDeadline;
    ScopedFault Solve(FaultSite::TspSolve, FaultSpec::rate(1, 3, 77));
    // Arming resets the tsp.solve hit counter, but tsp.transform is
    // only probed (never armed) here — snapshot it so each run reports
    // its own delta rather than the process-lifetime total.
    uint64_t TransformBefore =
        FaultInjector::instance().hits(FaultSite::TspTransform);
    ProgramAlignment A;
    if (Verified) {
      DiagnosticEngine Diags;
      VerifyOptions V;
      V.Level = VerifyLevel::Full;
      A = alignProgramVerified(Prog, Train, Options, Diags, V);
      EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
    } else {
      A = alignProgram(Prog, Train, Options);
    }
    Outcome O;
    O.SolveHits = FaultInjector::instance().hits(FaultSite::TspSolve);
    O.TransformHits =
        FaultInjector::instance().hits(FaultSite::TspTransform) -
        TransformBefore;
    for (const ProcedureAlignment &P : A.Procs)
      O.Rungs.push_back(P.Rung);
    O.Failures = A.Failures.size();
    for (const ProcedureFailure &F : A.Failures.Failures)
      O.DeadlineTripped |= F.Kind == FailureKind::Deadline;
    return O;
  };

  Outcome Plain = runOnce(false);
  Outcome Verified = runOnce(true);

  EXPECT_EQ(Plain.SolveHits, Verified.SolveHits)
      << "verify replays consumed tsp.solve hits";
  EXPECT_EQ(Plain.TransformHits, Verified.TransformHits)
      << "verify replays consumed tsp.transform hits";
  EXPECT_EQ(Plain.Rungs, Verified.Rungs)
      << "verify replays shifted the deadline's expiry point";
  EXPECT_EQ(Plain.Failures, Verified.Failures);
}
