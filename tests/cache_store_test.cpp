//===- tests/cache_store_test.cpp - Persistent cache store tests ----------===//
//
// Exercises the balign-cache store against the failure modes it promises
// to survive: bit rot, truncation, format drift, tampering that forges a
// valid checksum, leftover tmp files from dead writers, and LRU pressure.
// Every bad entry must degrade to a miss (recompute), never a wrong hit.
//
//===--------------------------------------------------------------------===//

#include "cache/Store.h"

#include "align/Pipeline.h"
#include "profile/Trace.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

using namespace balign;

namespace {

/// A small program plus matching profile and the no-cache alignment of
/// every procedure — the ground truth the cache must reproduce exactly.
struct Workload {
  Program Prog{"store_test"};
  ProgramProfile Train;
  AlignmentOptions Options;
  ProgramAlignment Truth;
};

Workload makeWorkload(size_t NumProcs, uint64_t Seed = 42) {
  Workload W;
  for (size_t P = 0; P != NumProcs; ++P) {
    Rng R(Seed + P);
    GenParams Params;
    Params.TargetBranchSites = 4 + P % 3;
    W.Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
  }
  for (size_t P = 0; P != NumProcs; ++P) {
    const Procedure &Proc = W.Prog.proc(P);
    Rng TraceRng(Seed * 31 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 400;
    W.Train.Procs.push_back(collectProfile(
        Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                            TraceOptions)));
  }
  W.Truth = alignProgram(W.Prog, W.Train, W.Options);
  return W;
}

void expectAlignmentEq(const ProcedureAlignment &A,
                       const ProcedureAlignment &B) {
  EXPECT_EQ(A.OriginalLayout.Order, B.OriginalLayout.Order);
  EXPECT_EQ(A.GreedyLayout.Order, B.GreedyLayout.Order);
  EXPECT_EQ(A.TspLayout.Order, B.TspLayout.Order);
  EXPECT_EQ(A.OriginalPenalty, B.OriginalPenalty);
  EXPECT_EQ(A.GreedyPenalty, B.GreedyPenalty);
  EXPECT_EQ(A.TspPenalty, B.TspPenalty);
  EXPECT_EQ(0, std::memcmp(&A.Bounds.HeldKarp, &B.Bounds.HeldKarp,
                           sizeof(A.Bounds.HeldKarp)));
  EXPECT_EQ(A.Bounds.Assignment, B.Bounds.Assignment);
  EXPECT_EQ(A.Bounds.AssignmentCycles, B.Bounds.AssignmentCycles);
  EXPECT_EQ(A.SolverRuns, B.SolverRuns);
  EXPECT_EQ(A.RunsFindingBest, B.RunsFindingBest);
}

/// Fills a cache with every procedure of \p W.
void storeAll(AlignmentCache &Cache, const Workload &W) {
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
    Cache.store(W.Prog.proc(P), W.Train.Procs[P], W.Options, P,
                W.Truth.Procs[P]);
}

/// Looks up procedure \p P and, on a hit, checks it against the truth.
bool lookupOne(AlignmentCache &Cache, const Workload &W, size_t P) {
  ProcedureAlignment Out;
  if (!Cache.lookup(W.Prog.proc(P), W.Train.Procs[P], W.Options, P, Out))
    return false;
  expectAlignmentEq(Out, W.Truth.Procs[P]);
  return true;
}

/// Fresh empty directory under the gtest temp root.
std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "balign_cache_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string storePath(const std::string &Dir) {
  return Dir + "/" + AlignmentCache::StoreFileName;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

constexpr size_t HeaderBytes = 16; ///< magic[8] + version u32 + reserved u32.

uint64_t readU64(const std::vector<uint8_t> &File, size_t Pos) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(File[Pos + I]) << (8 * I);
  return V;
}

uint32_t readU32(const std::vector<uint8_t> &File, size_t Pos) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(File[Pos + I]) << (8 * I);
  return V;
}

void writeU64(std::vector<uint8_t> &File, size_t Pos, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    File[Pos + I] = static_cast<uint8_t>(V >> (8 * I));
}

/// Byte layout of the first entry in a store file.
struct EntryView {
  size_t KeyPos = HeaderBytes;
  size_t PayloadSizePos = HeaderBytes + 16;
  size_t PayloadPos = HeaderBytes + 20;
  uint32_t PayloadSize = 0;
  size_t ChecksumPos = 0;
};

EntryView firstEntry(const std::vector<uint8_t> &File) {
  EntryView E;
  E.PayloadSize = readU32(File, E.PayloadSizePos);
  E.ChecksumPos = E.PayloadPos + E.PayloadSize;
  return E;
}

} // namespace

TEST(CacheStoreTest, MemoryRoundtrip) {
  Workload W = makeWorkload(3);
  AlignmentCache Cache;
  EXPECT_FALSE(lookupOne(Cache, W, 0)); // Cold: everything misses.
  storeAll(Cache, W);
  for (size_t P = 0; P != 3; ++P)
    EXPECT_TRUE(lookupOne(Cache, W, P));
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Stores, 3u);
  EXPECT_EQ(S.Entries, 3u);
  EXPECT_EQ(S.Invalidations, 0u);
  EXPECT_NE(S.summary().find("hits=3"), std::string::npos);
}

TEST(CacheStoreTest, WrongIndexOrOptionsMiss) {
  Workload W = makeWorkload(1);
  AlignmentCache Cache;
  storeAll(Cache, W);

  // Same inputs under a different procedure index: different derived
  // seed, so a different key.
  ProcedureAlignment Out;
  EXPECT_FALSE(
      Cache.lookup(W.Prog.proc(0), W.Train.Procs[0], W.Options, 7, Out));

  AlignmentOptions Reseeded = W.Options;
  Reseeded.Solver.Seed += 1;
  EXPECT_FALSE(
      Cache.lookup(W.Prog.proc(0), W.Train.Procs[0], Reseeded, 0, Out));

  EXPECT_TRUE(lookupOne(Cache, W, 0));
}

TEST(CacheStoreTest, DiskFlushReopenHits) {
  Workload W = makeWorkload(3);
  std::string Dir = freshDir("roundtrip");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    std::string Error;
    ASSERT_TRUE(Cache.flush(&Error)) << Error;
    EXPECT_GT(Cache.stats().BytesWritten, 0u);
  }
  AlignmentCache Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 3u);
  for (size_t P = 0; P != 3; ++P)
    EXPECT_TRUE(lookupOne(Reopened, W, P));
  EXPECT_EQ(Reopened.stats().Invalidations, 0u);
}

TEST(CacheStoreTest, FlushIsAtomicReplacement) {
  Workload W = makeWorkload(2);
  std::string Dir = freshDir("atomic");
  AlignmentCache Cache(Dir);
  storeAll(Cache, W);
  ASSERT_TRUE(Cache.flush());
  ASSERT_TRUE(Cache.flush()); // Second flush replaces, never appends.
  AlignmentCache Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 2u);
  // No tmp files left behind by successful flushes.
  size_t TmpFiles = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.path().filename().string().find(".tmp.") != std::string::npos)
      ++TmpFiles;
  EXPECT_EQ(TmpFiles, 0u);
}

TEST(CacheStoreTest, BitFlippedEntryIsDroppedOthersSalvaged) {
  Workload W = makeWorkload(3);
  std::string Dir = freshDir("bitflip");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  std::vector<uint8_t> File = readFile(storePath(Dir));
  EntryView E = firstEntry(File);
  File[E.PayloadPos + E.PayloadSize / 2] ^= 0xFF; // Rot inside entry 0.
  writeFile(storePath(Dir), File);

  AlignmentCache Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 2u); // Entries 1 and 2 salvaged.
  EXPECT_EQ(Reopened.stats().Invalidations, 1u);
  EXPECT_FALSE(lookupOne(Reopened, W, 0)); // The rotted entry is a miss...
  EXPECT_TRUE(lookupOne(Reopened, W, 1));  // ...the rest still hit.
  EXPECT_TRUE(lookupOne(Reopened, W, 2));
}

TEST(CacheStoreTest, TruncatedFileSalvagesPrefix) {
  Workload W = makeWorkload(3);
  std::string Dir = freshDir("truncated");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  std::vector<uint8_t> File = readFile(storePath(Dir));
  File.resize(File.size() - 5); // Cut into the last entry's checksum.
  writeFile(storePath(Dir), File);

  AlignmentCache Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 2u);
  // Truncation (a crash or full disk cut the store short) is a load
  // failure, not a content invalidation: the preceding entries are
  // intact and the taxonomy must say "the file ended early".
  EXPECT_EQ(Reopened.stats().LoadFailures, 1u);
  EXPECT_EQ(Reopened.stats().Invalidations, 0u);
  size_t Hits = 0;
  for (size_t P = 0; P != 3; ++P)
    Hits += lookupOne(Reopened, W, P) ? 1 : 0;
  EXPECT_EQ(Hits, 2u);
}

TEST(CacheStoreTest, TruncationAtEveryByteOffset) {
  // Exhaustive crash-cut sweep: a store prefix of every possible length
  // must (a) salvage exactly the complete entries it contains, (b)
  // report exactly one load failure unless the cut falls on an entry
  // boundary (where the file is short but self-consistent), and (c)
  // never misclassify a truncation as a content invalidation.
  Workload W = makeWorkload(2);
  std::string Dir = freshDir("everycut");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  std::vector<uint8_t> Full = readFile(storePath(Dir));

  // Walk the entry framing (key[16] + size u32 + payload + checksum u64)
  // to find the clean cut points: end-of-header and each entry's end.
  std::vector<size_t> Boundaries{HeaderBytes};
  size_t Pos = HeaderBytes;
  while (Pos < Full.size()) {
    uint32_t PayloadSize = readU32(Full, Pos + 16);
    Pos += 16 + 4 + PayloadSize + 8;
    Boundaries.push_back(Pos);
  }
  ASSERT_EQ(Pos, Full.size());
  ASSERT_EQ(Boundaries.size(), 3u);

  for (size_t Cut = 0; Cut != Full.size(); ++Cut) {
    std::vector<uint8_t> File(Full.begin(), Full.begin() + Cut);
    writeFile(storePath(Dir), File);

    size_t CompleteEntries = 0;
    bool CleanCut = false;
    for (size_t B = 0; B != Boundaries.size(); ++B) {
      if (Cut >= Boundaries[B])
        CompleteEntries = B;
      CleanCut |= Cut == Boundaries[B];
    }

    AlignmentCache Reopened(Dir);
    CacheStats S = Reopened.stats();
    EXPECT_EQ(Reopened.size(), CompleteEntries) << "cut at " << Cut;
    EXPECT_EQ(S.LoadFailures, CleanCut ? 0u : 1u) << "cut at " << Cut;
    EXPECT_EQ(S.Invalidations, 0u) << "cut at " << Cut;
    EXPECT_EQ(S.Retries, 0u) << "cut at " << Cut;

    size_t Hits = 0;
    for (size_t P = 0; P != 2; ++P)
      Hits += lookupOne(Reopened, W, P) ? 1 : 0;
    EXPECT_EQ(Hits, CompleteEntries) << "cut at " << Cut;
  }
}

TEST(CacheStoreTest, HeaderTruncationDiscardsStore) {
  Workload W = makeWorkload(1);
  std::string Dir = freshDir("headercut");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  std::vector<uint8_t> File = readFile(storePath(Dir));
  File.resize(HeaderBytes - 3);
  writeFile(storePath(Dir), File);
  AlignmentCache Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 0u);
  // The magic prefix still matches, so this is our store cut mid-header:
  // a truncation (load failure), not foreign content.
  EXPECT_EQ(Reopened.stats().LoadFailures, 1u);
  EXPECT_EQ(Reopened.stats().Invalidations, 0u);
}

TEST(CacheStoreTest, WrongVersionDiscardsWholesale) {
  Workload W = makeWorkload(2);
  std::string Dir = freshDir("version");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  std::vector<uint8_t> File = readFile(storePath(Dir));
  uint32_t Bumped = CacheFormatVersion + 1;
  std::memcpy(File.data() + 8, &Bumped, sizeof(Bumped));
  writeFile(storePath(Dir), File);

  AlignmentCache Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 0u);
  EXPECT_EQ(Reopened.stats().Invalidations, 1u);
  EXPECT_FALSE(lookupOne(Reopened, W, 0));
  // A flush from the new session writes a clean current-version store.
  storeAll(Reopened, W);
  ASSERT_TRUE(Reopened.flush());
  AlignmentCache Again(Dir);
  EXPECT_EQ(Again.size(), 2u);
}

TEST(CacheStoreTest, WrongMagicDiscardsWholesale) {
  Workload W = makeWorkload(1);
  std::string Dir = freshDir("magic");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  std::vector<uint8_t> File = readFile(storePath(Dir));
  File[0] ^= 0x20;
  writeFile(storePath(Dir), File);
  AlignmentCache Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 0u);
  EXPECT_EQ(Reopened.stats().Invalidations, 1u);
}

TEST(CacheStoreTest, ForgedChecksumStillRejectedByValidation) {
  Workload W = makeWorkload(1);
  std::string Dir = freshDir("forged");
  {
    AlignmentCache Cache(Dir);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  // Tamper with the stored TSP penalty, then *recompute the checksum* so
  // the entry loads clean — validation must still refuse to serve it.
  std::vector<uint8_t> File = readFile(storePath(Dir));
  EntryView E = firstEntry(File);
  size_t NumBlocks = W.Prog.proc(0).numBlocks();
  size_t LayoutBytes = 4 + 4 * NumBlocks;
  size_t TspPenaltyPos = E.PayloadPos + 3 * LayoutBytes + 16;
  ASSERT_LT(TspPenaltyPos + 8, E.ChecksumPos);
  writeU64(File, TspPenaltyPos, readU64(File, TspPenaltyPos) + 1);
  writeU64(File, E.ChecksumPos,
           entryChecksum(readU64(File, E.KeyPos), readU64(File, E.KeyPos + 8),
                         File.data() + E.PayloadPos, E.PayloadSize));
  writeFile(storePath(Dir), File);

  AlignmentCache Reopened(Dir);
  ASSERT_EQ(Reopened.size(), 1u); // Checksum passes, so the entry loads...
  ProcedureAlignment Out;
  EXPECT_FALSE(Reopened.lookup(W.Prog.proc(0), W.Train.Procs[0], W.Options,
                               0, Out)); // ...but is never served.
  CacheStats S = Reopened.stats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Invalidations, 1u);
  EXPECT_EQ(Reopened.size(), 0u); // And it is dropped, not retried.
}

TEST(CacheStoreTest, StaleTmpFilesAreHarmless) {
  Workload W = makeWorkload(1);
  std::string Dir = freshDir("staletmp");
  // Simulate a writer that died mid-flush before the rename.
  std::vector<uint8_t> Garbage(128, 0xAB);
  writeFile(Dir + "/" + AlignmentCache::StoreFileName + ".tmp.99999",
            Garbage);

  AlignmentCache Cache(Dir);
  EXPECT_EQ(Cache.size(), 0u); // Tmp leftovers are not the store.
  storeAll(Cache, W);
  ASSERT_TRUE(Cache.flush());
  AlignmentCache Reopened(Dir);
  EXPECT_TRUE(lookupOne(Reopened, W, 0));
}

TEST(CacheStoreTest, MissingDirectoryIsColdNotFatal) {
  Workload W = makeWorkload(1);
  std::string Dir = freshDir("missing") + "/nested/deeper";
  AlignmentCache Cache(Dir); // Directory does not exist yet.
  EXPECT_FALSE(lookupOne(Cache, W, 0));
  storeAll(Cache, W);
  std::string Error;
  ASSERT_TRUE(Cache.flush(&Error)) << Error; // flush() creates it.
  AlignmentCache Reopened(Dir);
  EXPECT_TRUE(lookupOne(Reopened, W, 0));
}

TEST(CacheStoreTest, LruEvictsOldestFirst) {
  Workload W = makeWorkload(6);
  AlignmentCacheConfig Config;
  Config.MaxEntries = 4;
  AlignmentCache Cache(Config);
  storeAll(Cache, W);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Stores, 6u);
  EXPECT_EQ(S.Evictions, 2u);
  EXPECT_EQ(S.Entries, 4u);
  EXPECT_FALSE(lookupOne(Cache, W, 0)); // The two oldest were evicted.
  EXPECT_FALSE(lookupOne(Cache, W, 1));
  for (size_t P = 2; P != 6; ++P)
    EXPECT_TRUE(lookupOne(Cache, W, P));
}

TEST(CacheStoreTest, LookupRefreshesLruRecency) {
  Workload W = makeWorkload(5);
  AlignmentCacheConfig Config;
  Config.MaxEntries = 4;
  AlignmentCache Cache(Config);
  for (size_t P = 0; P != 4; ++P)
    Cache.store(W.Prog.proc(P), W.Train.Procs[P], W.Options, P,
                W.Truth.Procs[P]);
  EXPECT_TRUE(lookupOne(Cache, W, 0)); // 0 becomes the most recent...
  Cache.store(W.Prog.proc(4), W.Train.Procs[4], W.Options, 4,
              W.Truth.Procs[4]);
  EXPECT_TRUE(lookupOne(Cache, W, 0));  // ...so it survives the eviction
  EXPECT_FALSE(lookupOne(Cache, W, 1)); // and 1 is the victim instead.
}

TEST(CacheStoreTest, PayloadByteBoundEvicts) {
  Workload W = makeWorkload(4);
  AlignmentCacheConfig Config;
  Config.MaxPayloadBytes = 1; // Every insert immediately overflows.
  AlignmentCache Cache(Config);
  storeAll(Cache, W);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.Evictions, 4u);
}

TEST(CacheStoreTest, DiskEvictionCompactsOnFlush) {
  Workload W = makeWorkload(6);
  std::string Dir = freshDir("compact");
  AlignmentCacheConfig Config;
  Config.MaxEntries = 2;
  {
    AlignmentCache Cache(Dir, Config);
    storeAll(Cache, W);
    ASSERT_TRUE(Cache.flush());
  }
  AlignmentCache Reopened(Dir, Config);
  EXPECT_EQ(Reopened.size(), 2u);
  EXPECT_TRUE(lookupOne(Reopened, W, 4));
  EXPECT_TRUE(lookupOne(Reopened, W, 5));
}
