//===- tests/profileio_test.cpp - Profile serialization tests -----------------===//

#include "ir/CFGBuilder.h"
#include "profile/ProfileIO.h"
#include "profile/Trace.h"
#include "machine/Btb.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

Program makeProgram() {
  Program Prog("demo");
  CFGBuilder A("alpha");
  BlockId C = A.cond(4, "head");
  BlockId T = A.jump(3, "left");
  BlockId E = A.jump(3, "right");
  BlockId R = A.ret(1, "out");
  A.branches(C, T, E);
  A.edge(T, R).edge(E, R);
  Prog.addProcedure(A.take());

  CFGBuilder B("beta"); // Unnamed blocks exercise b<index> naming.
  BlockId J = B.jump(2);
  BlockId Z = B.ret(1);
  B.edge(J, Z);
  Prog.addProcedure(B.take());
  return Prog;
}

ProgramProfile makeProfile(const Program &Prog) {
  ProgramProfile Profile;
  for (size_t P = 0; P != Prog.numProcedures(); ++P)
    Profile.Procs.push_back(ProcedureProfile::zeroed(Prog.proc(P)));
  Profile.Procs[0].BlockCounts = {100, 60, 40, 100};
  Profile.Procs[0].EdgeCounts[0] = {60, 40};
  Profile.Procs[0].EdgeCounts[1] = {60};
  Profile.Procs[0].EdgeCounts[2] = {40};
  Profile.Procs[1].BlockCounts = {7, 7};
  Profile.Procs[1].EdgeCounts[0] = {7};
  return Profile;
}

} // namespace

TEST(ProfileIOTest, RoundTrips) {
  Program Prog = makeProgram();
  ProgramProfile Profile = makeProfile(Prog);
  std::string Text = printProgramProfile(Prog, Profile);
  EXPECT_NE(Text.find("profile demo"), std::string::npos);
  EXPECT_NE(Text.find("head: 100 -> left:60 right:40"), std::string::npos);
  EXPECT_NE(Text.find("b0: 7 -> b1:7"), std::string::npos);

  std::string Error;
  std::optional<ProgramProfile> Parsed =
      parseProgramProfile(Prog, Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    EXPECT_EQ(Parsed->Procs[P].BlockCounts, Profile.Procs[P].BlockCounts);
    EXPECT_EQ(Parsed->Procs[P].EdgeCounts, Profile.Procs[P].EdgeCounts);
  }
}

TEST(ProfileIOTest, OmittedEntriesDefaultToZero) {
  Program Prog = makeProgram();
  const char *Text = R"(profile demo
proc alpha {
  head: 10 -> left:10 right:0
}
)";
  std::string Error;
  std::optional<ProgramProfile> Parsed =
      parseProgramProfile(Prog, Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->Procs[0].BlockCounts[0], 10u);
  EXPECT_EQ(Parsed->Procs[0].BlockCounts[1], 0u); // Omitted block.
  EXPECT_EQ(Parsed->Procs[1].BlockCounts[0], 0u); // Omitted proc.
}

TEST(ProfileIOTest, RejectsMalformedInputs) {
  Program Prog = makeProgram();
  std::string Error;
  EXPECT_FALSE(parseProgramProfile(Prog, "garbage", &Error).has_value());
  EXPECT_NE(Error.find("header"), std::string::npos);

  EXPECT_FALSE(parseProgramProfile(
                   Prog, "profile demo\nproc nosuch {\n}\n", &Error)
                   .has_value());
  EXPECT_NE(Error.find("unknown procedure"), std::string::npos);

  EXPECT_FALSE(
      parseProgramProfile(
          Prog, "profile demo\nproc alpha {\n  zz: 3\n}\n", &Error)
          .has_value());
  EXPECT_NE(Error.find("unknown block"), std::string::npos);

  // Edge that does not exist in the CFG.
  EXPECT_FALSE(parseProgramProfile(
                   Prog,
                   "profile demo\nproc alpha {\n  head: 5 -> out:5\n}\n",
                   &Error)
                   .has_value());
  EXPECT_NE(Error.find("does not exist"), std::string::npos);

  // Bad counts.
  EXPECT_FALSE(parseProgramProfile(
                   Prog,
                   "profile demo\nproc alpha {\n  head: x\n}\n", &Error)
                   .has_value());
  EXPECT_NE(Error.find("bad block count"), std::string::npos);

  // Unterminated proc.
  EXPECT_FALSE(parseProgramProfile(
                   Prog, "profile demo\nproc alpha {\n  head: 5\n", &Error)
                   .has_value());
  EXPECT_NE(Error.find("unterminated"), std::string::npos);
}

TEST(ProfileIOTest, RoundTripsGeneratedWorkloadProfiles) {
  Rng StructureRng(42);
  GenParams Params;
  Params.TargetBranchSites = 10;
  Params.MultiwayFraction = 0.1;
  GeneratedProcedure Gen = generateProcedure("g", Params, StructureRng);
  Program Prog("gen");
  Prog.addProcedure(Gen.Proc);

  Rng TraceRng(43);
  TraceGenOptions Options;
  Options.BranchBudget = 500;
  ProgramProfile Profile;
  Profile.Procs.push_back(collectProfile(
      Prog.proc(0), generateTrace(Prog.proc(0),
                                  BranchBehavior::uniform(Prog.proc(0)),
                                  TraceRng, Options)));

  std::string Error;
  std::optional<ProgramProfile> Parsed = parseProgramProfile(
      Prog, printProgramProfile(Prog, Profile), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->Procs[0].EdgeCounts, Profile.Procs[0].EdgeCounts);
  EXPECT_EQ(Parsed->Procs[0].BlockCounts, Profile.Procs[0].BlockCounts);
}

TEST(BtbTest, HitsRequireMatchingTarget) {
  Btb Buffer(64);
  EXPECT_FALSE(Buffer.hit(0x100, 0x200));
  Buffer.update(0x100, 0x200);
  EXPECT_TRUE(Buffer.hit(0x100, 0x200));
  EXPECT_FALSE(Buffer.hit(0x100, 0x300)); // Stale target.
  Buffer.update(0x100, 0x300);
  EXPECT_TRUE(Buffer.hit(0x100, 0x300));
  EXPECT_EQ(Buffer.lookups(), 4u);
  EXPECT_EQ(Buffer.hits(), 2u);
}

TEST(BtbTest, DirectMappedConflicts) {
  Btb Buffer(16); // 16 entries x 4-byte instrs = 64-byte index window.
  Buffer.update(0x0, 0xAA);
  EXPECT_TRUE(Buffer.hit(0x0, 0xAA));
  Buffer.update(0x40, 0xBB); // Same index, different tag: evicts.
  EXPECT_FALSE(Buffer.hit(0x0, 0xAA));
  EXPECT_TRUE(Buffer.hit(0x40, 0xBB));
  Buffer.reset();
  EXPECT_FALSE(Buffer.hit(0x40, 0xBB));
}

TEST(ProfileIOTest, SaturatedCountsRoundTripAndOverflowIsRejected) {
  Program Prog = makeProgram();
  ProgramProfile Profile = makeProfile(Prog);
  // The UINT64_MAX saturation sentinel must survive a print/parse
  // round-trip: the lint counter-saturated check keys on it.
  Profile.Procs[0].BlockCounts[0] = UINT64_MAX;
  std::string Text = printProgramProfile(Prog, Profile);
  std::string Error;
  auto Parsed = parseProgramProfile(Prog, Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->Procs[0].BlockCounts[0], UINT64_MAX);

  // One past 2^64-1 (and anything wider) is an overflow, not a wrap.
  auto Bad = parseProgramProfile(
      Prog, "profile demo\nproc alpha {\n  head: 18446744073709551616\n}\n",
      &Error);
  EXPECT_FALSE(Bad.has_value());
  EXPECT_NE(Error.find("bad block count"), std::string::npos);
  auto Wide = parseProgramProfile(
      Prog, "profile demo\nproc alpha {\n  head: 111111111111111111111\n}\n",
      &Error);
  EXPECT_FALSE(Wide.has_value());
}
