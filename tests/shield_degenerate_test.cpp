//===- tests/shield_degenerate_test.cpp - degenerate sizes down the ladder --===//
//
// Degenerate problem sizes through every rung of the degradation ladder:
// empty and single-city DTSP instances straight into the solver, empty
// programs, single-block procedures, and a self-looping two-block
// procedure aligned through the full path, the greedy rung, and the
// original rung — all of which must produce the identical trivial
// layout, with and without injected faults.
//
//===--------------------------------------------------------------------===//

#include "align/Pipeline.h"
#include "ir/CFGBuilder.h"
#include "robust/FaultInjector.h"
#include "tsp/IteratedOpt.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

using ScopedFault = FaultInjector::ScopedFault;

/// A procedure that is one conditional block spinning on itself plus the
/// exit it eventually falls through to — the smallest CFG with a
/// profiled branch, and one whose only legal layouts are [0, 1].
Procedure selfLoopProc() {
  CFGBuilder B("spin");
  BlockId Head = B.cond(4, "head");
  BlockId Done = B.ret(2, "done");
  B.branches(Head, Head, Done); // Taken edge spins; fall-through exits.
  return B.take();
}

ProcedureProfile selfLoopProfile(const Procedure &Proc) {
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.BlockCounts[0] = 10; // 1 entry + 9 taken self-loops.
  Profile.BlockCounts[1] = 1;
  Profile.EdgeCounts[0][0] = 9; // head -> head (taken).
  Profile.EdgeCounts[0][1] = 1; // head -> done (fall-through).
  return Profile;
}

/// A single-block procedure: nothing to reorder, no branches to profile.
Procedure singleBlockProc() {
  CFGBuilder B("leaf");
  B.ret(3, "only");
  return B.take();
}

} // namespace

TEST(ShieldDegenerateTest, SolverHandlesEmptyAndTrivialInstances) {
  // N = 0: nothing to tour. The alignment reduction never builds this
  // (every instance has at least the dummy city), but the solver is a
  // public entry point and must not trip UB on it.
  DirectedTsp Empty(0);
  DtspSolution S0 = solveDirectedTsp(Empty, IteratedOptOptions());
  EXPECT_TRUE(S0.Tour.empty());
  EXPECT_EQ(S0.Cost, 0);

  // N = 1 and N = 2: the canonical order is the only tour.
  DirectedTsp One(1);
  DtspSolution S1 = solveDirectedTsp(One, IteratedOptOptions());
  EXPECT_EQ(S1.Tour, (std::vector<City>{0}));
  EXPECT_EQ(S1.Cost, 0);

  DirectedTsp Two(2);
  Two.setCost(0, 1, 5);
  Two.setCost(1, 0, 7);
  DtspSolution S2 = solveDirectedTsp(Two, IteratedOptOptions());
  EXPECT_EQ(S2.Tour, (std::vector<City>{0, 1}));
  EXPECT_EQ(S2.Cost, 12);
}

TEST(ShieldDegenerateTest, EmptyProgramAlignsToNothingEvenUnderFaults) {
  FaultInjector::instance().reset();
  Program Prog("empty");
  ProgramProfile Train;
  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Abort;
  ScopedFault Fault(FaultSite::PoolTask, FaultSpec::always());
  ProgramAlignment Result = alignProgram(Prog, Train, Options);
  EXPECT_TRUE(Result.Procs.empty());
  EXPECT_TRUE(Result.Failures.empty());
}

TEST(ShieldDegenerateTest, SingleBlockProcedureIsUntouchableAtEveryRung) {
  FaultInjector::instance().reset();
  Program Prog("single");
  Prog.addProcedure(singleBlockProc());
  ProgramProfile Train;
  Train.Procs.push_back(ProcedureProfile::zeroed(Prog.proc(0)));
  Train.Procs[0].BlockCounts[0] = 100; // Executed, but branch-free.

  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;
  // Branch-free procedures take the unprofiled keep-original path, so
  // even an always-firing task fault cannot touch them.
  ScopedFault Fault(FaultSite::PoolTask, FaultSpec::always());
  ProgramAlignment Result = alignProgram(Prog, Train, Options);
  ASSERT_EQ(Result.Procs.size(), 1u);
  EXPECT_TRUE(Result.Failures.empty());
  EXPECT_EQ(Result.Procs[0].Rung, LadderRung::Tsp);
  EXPECT_EQ(Result.Procs[0].TspLayout.Order, (std::vector<BlockId>{0}));
  EXPECT_EQ(Result.Procs[0].GreedyLayout.Order, (std::vector<BlockId>{0}));
  EXPECT_EQ(Result.Procs[0].TspPenalty, 0u);
}

TEST(ShieldDegenerateTest, SelfLoopProcedureIsIdenticalDownTheWholeLadder) {
  FaultInjector::instance().reset();
  Program Prog("spin");
  Prog.addProcedure(selfLoopProc());
  ProgramProfile Train;
  Train.Procs.push_back(selfLoopProfile(Prog.proc(0)));
  ASSERT_TRUE(Train.Procs[0].isFlowConsistent(Prog.proc(0)));

  const std::vector<BlockId> Trivial{0, 1};
  AlignmentOptions Options;
  Options.OnError = OnErrorPolicy::Fallback;

  // Rung 1: the full path. Entry pinning forces the only legal layout.
  ProgramAlignment Full = alignProgram(Prog, Train, Options);
  ASSERT_EQ(Full.Procs.size(), 1u);
  EXPECT_TRUE(Full.Failures.empty());
  EXPECT_EQ(Full.Procs[0].Rung, LadderRung::Tsp);
  EXPECT_EQ(Full.Procs[0].TspLayout.Order, Trivial);

  // Rung 2: greedy, via a solver fault.
  uint64_t GreedyPenalty;
  {
    ScopedFault Fault(FaultSite::TspSolve, FaultSpec::always());
    ProgramAlignment Greedy = alignProgram(Prog, Train, Options);
    ASSERT_EQ(Greedy.Failures.size(), 1u);
    EXPECT_EQ(Greedy.Procs[0].Rung, LadderRung::Greedy);
    EXPECT_EQ(Greedy.Procs[0].TspLayout.Order, Trivial);
    GreedyPenalty = Greedy.Procs[0].TspPenalty;
  }

  // Rung 3: original, via solver + greedy faults.
  {
    ScopedFault SolveFault(FaultSite::TspSolve, FaultSpec::always());
    ScopedFault GreedyFault(FaultSite::AlignGreedy, FaultSpec::always());
    ProgramAlignment Original = alignProgram(Prog, Train, Options);
    ASSERT_EQ(Original.Failures.size(), 1u);
    EXPECT_EQ(Original.Procs[0].Rung, LadderRung::Original);
    EXPECT_EQ(Original.Procs[0].TspLayout.Order, Trivial);
    // On a two-block procedure every rung's layout — and therefore its
    // penalty — is identical; degradation costs nothing here.
    EXPECT_EQ(Original.Procs[0].TspPenalty, Full.Procs[0].TspPenalty);
    EXPECT_EQ(GreedyPenalty, Full.Procs[0].TspPenalty);
  }
}

TEST(ShieldDegenerateTest, SelfLoopSurvivesResourceCapsAndDeadlines) {
  FaultInjector::instance().reset();
  Program Prog("spin");
  Prog.addProcedure(selfLoopProc());
  ProgramProfile Train;
  Train.Procs.push_back(selfLoopProfile(Prog.proc(0)));
  const std::vector<BlockId> Trivial{0, 1};

  // A 1-city cap trips even this instance (2 blocks + dummy = 3 cities).
  AlignmentOptions Capped;
  Capped.OnError = OnErrorPolicy::Fallback;
  Capped.MaxTspCities = 1;
  ProgramAlignment A = alignProgram(Prog, Train, Capped);
  ASSERT_EQ(A.Failures.size(), 1u);
  EXPECT_EQ(A.Failures.Failures[0].Kind, FailureKind::ResourceCap);
  EXPECT_EQ(A.Procs[0].TspLayout.Order, Trivial);

  // An already-expired run deadline degrades it the same way.
  ManualClock Clock;
  Deadline RunDeadline(1, Clock.fn());
  Clock.advance(2);
  AlignmentOptions Timed;
  Timed.OnError = OnErrorPolicy::Skip;
  Timed.RunDeadline = &RunDeadline;
  ProgramAlignment B = alignProgram(Prog, Train, Timed);
  ASSERT_EQ(B.Failures.size(), 1u);
  EXPECT_EQ(B.Failures.Failures[0].Kind, FailureKind::Deadline);
  EXPECT_TRUE(B.Failures.Failures[0].Skipped);
  EXPECT_EQ(B.Procs[0].TspLayout.Order, Trivial);
}
