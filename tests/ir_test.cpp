//===- tests/ir_test.cpp - IR substrate tests --------------------------------===//

#include "ir/CFG.h"
#include "ir/CFGBuilder.h"
#include "ir/Dot.h"
#include "ir/TextFormat.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

/// entry -> cond -> {then, else} -> join -> ret, a classic diamond.
Procedure makeDiamond() {
  CFGBuilder B("diamond");
  BlockId Entry = B.jump(2, "entry");
  BlockId Cond = B.cond(3, "cond");
  BlockId Then = B.jump(4, "then");
  BlockId Else = B.jump(5, "else");
  BlockId Join = B.jump(2, "join");
  BlockId Exit = B.ret(1, "exit");
  B.edge(Entry, Cond);
  B.branches(Cond, Then, Else);
  B.edge(Then, Join).edge(Else, Join).edge(Join, Exit);
  return B.take();
}

} // namespace

TEST(CFGTest, DiamondShape) {
  Procedure P = makeDiamond();
  EXPECT_EQ(P.numBlocks(), 6u);
  EXPECT_EQ(P.entry(), 0u);
  EXPECT_EQ(P.numBranchSites(), 1u);
  EXPECT_EQ(P.totalInstructions(), 2u + 3 + 4 + 5 + 2 + 1);
  EXPECT_TRUE(P.verify());
}

TEST(CFGTest, PredecessorsComputed) {
  Procedure P = makeDiamond();
  auto Preds = P.computePredecessors();
  EXPECT_TRUE(Preds[0].empty());
  ASSERT_EQ(Preds[4].size(), 2u); // join has then + else.
  EXPECT_EQ(Preds[1].size(), 1u);
}

TEST(CFGVerifyTest, RejectsEmptyProcedure) {
  Procedure P("empty");
  std::string Error;
  EXPECT_FALSE(P.verify(&Error));
  EXPECT_NE(Error.find("no blocks"), std::string::npos);
}

TEST(CFGVerifyTest, RejectsWrongSuccessorCounts) {
  {
    Procedure P("badjump");
    BasicBlock B;
    B.Kind = TerminatorKind::Unconditional;
    P.addBlock(B); // Jump with zero successors.
    std::string Error;
    EXPECT_FALSE(P.verify(&Error));
    EXPECT_NE(Error.find("jump"), std::string::npos);
  }
  {
    Procedure P("badcond");
    BasicBlock B;
    B.Kind = TerminatorKind::Conditional;
    BlockId C = P.addBlock(B);
    B.Kind = TerminatorKind::Return;
    BlockId R = P.addBlock(B);
    P.addEdge(C, R); // Only one successor.
    std::string Error;
    EXPECT_FALSE(P.verify(&Error));
    EXPECT_NE(Error.find("cond"), std::string::npos);
  }
}

TEST(CFGVerifyTest, RejectsDuplicateCondSuccessors) {
  Procedure P("dup");
  BasicBlock B;
  B.Kind = TerminatorKind::Conditional;
  BlockId C = P.addBlock(B);
  B.Kind = TerminatorKind::Return;
  BlockId R = P.addBlock(B);
  P.addEdge(C, R);
  P.addEdge(C, R);
  EXPECT_FALSE(P.verify());
}

TEST(CFGVerifyTest, RejectsRetWithSuccessors) {
  Procedure P("badret");
  BasicBlock B;
  B.Kind = TerminatorKind::Return;
  BlockId R0 = P.addBlock(B);
  BlockId R1 = P.addBlock(B);
  P.addEdge(R0, R1);
  EXPECT_FALSE(P.verify());
}

TEST(CFGVerifyTest, RejectsUnreachableBlock) {
  Procedure P("unreachable");
  BasicBlock B;
  B.Kind = TerminatorKind::Return;
  P.addBlock(B); // Entry returns immediately.
  B.Kind = TerminatorKind::Return;
  P.addBlock(B); // Orphan.
  std::string Error;
  EXPECT_FALSE(P.verify(&Error));
  EXPECT_NE(Error.find("unreachable"), std::string::npos);
}

TEST(CFGVerifyTest, AcceptsSelfLoopConditional) {
  // A conditional may target itself on one edge (a one-block loop).
  Procedure P("selfloop");
  BasicBlock B;
  B.Kind = TerminatorKind::Conditional;
  BlockId C = P.addBlock(B);
  B.Kind = TerminatorKind::Return;
  BlockId R = P.addBlock(B);
  P.addEdge(C, C);
  P.addEdge(C, R);
  EXPECT_TRUE(P.verify());
}

TEST(TextFormatTest, RoundTripsPrograms) {
  Program Prog("demo");
  Prog.addProcedure(makeDiamond());
  std::string Text = printProgram(Prog);
  std::string Error;
  std::optional<Program> Parsed = parseProgram(Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->getName(), "demo");
  ASSERT_EQ(Parsed->numProcedures(), 1u);
  const Procedure &P = Parsed->proc(0);
  EXPECT_EQ(P.numBlocks(), 6u);
  EXPECT_EQ(P.block(1).Kind, TerminatorKind::Conditional);
  EXPECT_EQ(P.block(1).InstrCount, 3u);
  EXPECT_EQ(P.successors(1).size(), 2u);
  // Round-trip again: stable fixed point.
  EXPECT_EQ(printProgram(*Parsed), Text);
}

TEST(TextFormatTest, ParsesForwardReferencesAndComments) {
  const char *Text = R"(# a comment
program fwd
proc f {
  a: size 1 cond -> b c   # trailing comment
  b: size 2 jump -> d
  c: size 3 jump -> d
  d: size 1 ret
}
)";
  std::string Error;
  std::optional<Program> Parsed = parseProgram(Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->proc(0).numBlocks(), 4u);
}

TEST(TextFormatTest, ReportsErrors) {
  std::string Error;
  EXPECT_FALSE(parseProgram("nonsense", &Error).has_value());
  EXPECT_NE(Error.find("line 1"), std::string::npos);

  EXPECT_FALSE(
      parseProgram("program p\nproc f {\n  a: size 0 ret\n}\n", &Error)
          .has_value());
  EXPECT_NE(Error.find("positive"), std::string::npos);

  EXPECT_FALSE(
      parseProgram("program p\nproc f {\n  a: size 1 jump -> zz\n}\n",
                   &Error)
          .has_value());
  EXPECT_NE(Error.find("unknown successor"), std::string::npos);

  EXPECT_FALSE(
      parseProgram("program p\nproc f {\n  a: size 1 ret\n", &Error)
          .has_value());
  EXPECT_NE(Error.find("unterminated"), std::string::npos);
}

TEST(DotTest, EmitsNodesAndEdges) {
  Procedure P = makeDiamond();
  std::string Dot = printDot(P);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(Dot.find("cond"), std::string::npos);

  std::vector<std::vector<uint64_t>> Counts(P.numBlocks());
  for (BlockId B = 0; B != P.numBlocks(); ++B)
    Counts[B].assign(P.successors(B).size(), 7);
  std::string Labeled = printDot(P, &Counts);
  EXPECT_NE(Labeled.find("label=\"7\""), std::string::npos);
}
