//===- tests/integration_test.cpp - Whole-pipeline integration tests ----------===//

#include "align/Penalty.h"
#include "align/Pipeline.h"
#include "analysis/PipelineVerifier.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

/// A reduced-budget copy of a suite benchmark so integration tests run in
/// seconds.
WorkloadInstance smallWorkload(const std::string &Name,
                               uint64_t BudgetCap = 4000) {
  for (WorkloadSpec Spec : benchmarkSuite()) {
    if (Spec.Benchmark != Name)
      continue;
    for (DataSetSpec &Ds : Spec.DataSets)
      Ds.BranchBudget = std::min(Ds.BranchBudget, BudgetCap);
    return buildWorkload(Spec);
  }
  ADD_FAILURE() << "unknown benchmark " << Name;
  return WorkloadInstance();
}

/// alignProgram with balign-verify's verify-each hooks enabled:
/// integration tests always run under full verification, so any
/// pipeline regression that violates a reduction invariant fails here
/// even if the aggregate numbers still look plausible.
ProgramAlignment verifiedAlign(const Program &Prog,
                               const ProgramProfile &Train,
                               AlignmentOptions Options) {
  DiagnosticEngine Diags;
  ProgramAlignment Result =
      alignProgramVerified(Prog, Train, Options, Diags, VerifyOptions());
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
  return Result;
}

/// Field-by-field bit-identity of two whole-program alignments: layouts,
/// penalties, bounds, and solver statistics. Stage timers are excluded —
/// they measure the clock, not the result.
void expectAlignmentsIdentical(const ProgramAlignment &A,
                               const ProgramAlignment &B,
                               const std::string &What) {
  ASSERT_EQ(A.Procs.size(), B.Procs.size()) << What;
  for (size_t P = 0; P != A.Procs.size(); ++P) {
    const ProcedureAlignment &PA = A.Procs[P];
    const ProcedureAlignment &PB = B.Procs[P];
    EXPECT_EQ(PA.OriginalLayout.Order, PB.OriginalLayout.Order)
        << What << " proc " << P;
    EXPECT_EQ(PA.GreedyLayout.Order, PB.GreedyLayout.Order)
        << What << " proc " << P;
    EXPECT_EQ(PA.TspLayout.Order, PB.TspLayout.Order)
        << What << " proc " << P;
    EXPECT_EQ(PA.OriginalPenalty, PB.OriginalPenalty) << What << " proc " << P;
    EXPECT_EQ(PA.GreedyPenalty, PB.GreedyPenalty) << What << " proc " << P;
    EXPECT_EQ(PA.TspPenalty, PB.TspPenalty) << What << " proc " << P;
    EXPECT_EQ(PA.Bounds.HeldKarp, PB.Bounds.HeldKarp) << What << " proc " << P;
    EXPECT_EQ(PA.Bounds.Assignment, PB.Bounds.Assignment)
        << What << " proc " << P;
    EXPECT_EQ(PA.Bounds.AssignmentCycles, PB.Bounds.AssignmentCycles)
        << What << " proc " << P;
    EXPECT_EQ(PA.SolverRuns, PB.SolverRuns) << What << " proc " << P;
    EXPECT_EQ(PA.RunsFindingBest, PB.RunsFindingBest) << What << " proc " << P;
  }
}

} // namespace

TEST(PipelineTest, OrderingInvariantHoldsOnCom) {
  WorkloadInstance W = smallWorkload("com");
  AlignmentOptions Options;
  ProgramAlignment Result =
      verifiedAlign(W.Prog, W.DataSets[0].Profile, Options);
  ASSERT_EQ(Result.Procs.size(), W.Prog.numProcedures());

  for (size_t P = 0; P != Result.Procs.size(); ++P) {
    const ProcedureAlignment &PA = Result.Procs[P];
    EXPECT_TRUE(PA.GreedyLayout.isValid(W.Prog.proc(P)));
    EXPECT_TRUE(PA.TspLayout.isValid(W.Prog.proc(P)));
    // TSP <= greedy <= original may fail per-procedure for greedy (it is
    // a heuristic) but the bound ordering must always hold:
    EXPECT_LE(PA.Bounds.HeldKarp,
              static_cast<double>(PA.TspPenalty) + 1e-6);
    EXPECT_LE(PA.Bounds.Assignment,
              static_cast<int64_t>(PA.TspPenalty));
    EXPECT_LE(PA.TspPenalty, PA.OriginalPenalty);
  }
  // Aggregate ordering (the Figure 2 skeleton).
  EXPECT_LE(Result.totalHeldKarpBound(),
            static_cast<double>(Result.totalTspPenalty()) + 1e-6);
  EXPECT_LE(Result.totalTspPenalty(), Result.totalGreedyPenalty());
  EXPECT_LE(Result.totalGreedyPenalty(), Result.totalOriginalPenalty());
  EXPECT_GT(Result.totalOriginalPenalty(), 0u);
}

TEST(PipelineTest, SignificantPenaltyReductionOnUnfriendlyCode) {
  // dod models branch-unfriendly source layout; alignment must remove a
  // large share of penalties (the paper removes ~2/3 on doduc).
  WorkloadInstance W = smallWorkload("dod");
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  ProgramAlignment Result =
      verifiedAlign(W.Prog, W.DataSets[0].Profile, Options);
  double Ratio = static_cast<double>(Result.totalTspPenalty()) /
                 static_cast<double>(Result.totalOriginalPenalty());
  EXPECT_LT(Ratio, 0.7);
}

TEST(PipelineTest, CrossValidationDilutesButPreservesBenefit) {
  WorkloadInstance W = smallWorkload("dod", /*BudgetCap=*/8000);
  const ProgramProfile &Train = W.DataSets[0].Profile;
  const ProgramProfile &Test = W.DataSets[1].Profile;
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  ProgramAlignment Result = verifiedAlign(W.Prog, Train, Options);

  std::vector<Layout> Tsp = Result.tspLayouts();
  std::vector<Layout> Original = Result.originalLayouts();

  uint64_t SelfTsp =
      evaluateProgramPenalty(W.Prog, Tsp, Options.Model, Train, Train);
  uint64_t SelfOrig =
      evaluateProgramPenalty(W.Prog, Original, Options.Model, Train, Train);
  uint64_t CrossTsp =
      evaluateProgramPenalty(W.Prog, Tsp, Options.Model, Train, Test);
  uint64_t CrossOrig =
      evaluateProgramPenalty(W.Prog, Original, Options.Model, Train, Test);

  double SelfRatio =
      static_cast<double>(SelfTsp) / static_cast<double>(SelfOrig);
  double CrossRatio =
      static_cast<double>(CrossTsp) / static_cast<double>(CrossOrig);
  // Cross-validated benefit is diluted but most of it remains.
  EXPECT_GT(CrossRatio, SelfRatio - 0.05);
  EXPECT_LT(CrossRatio, (1.0 + SelfRatio) / 2.0)
      << "the bulk of the benefit should remain";
}

TEST(PipelineTest, StageTimesAccumulated) {
  WorkloadInstance W = smallWorkload("com", 1000);
  AlignmentOptions Options;
  ProgramAlignment Result =
      verifiedAlign(W.Prog, W.DataSets[0].Profile, Options);
  EXPECT_GE(Result.SolverSeconds, 0.0);
  EXPECT_GE(Result.GreedySeconds, 0.0);
  EXPECT_GE(Result.MatrixSeconds, 0.0);
  EXPECT_GE(Result.BoundsSeconds, 0.0);
  EXPECT_GT(Result.SolverSeconds + Result.MatrixSeconds, 0.0);
}

TEST(IntegrationTest, SimulatedTimesFollowPenaltyOrdering) {
  WorkloadInstance W = smallWorkload("dod", 3000);
  const WorkloadDataSet &Ds = W.DataSets[0];
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  ProgramAlignment Result = verifiedAlign(W.Prog, Ds.Profile, Options);

  auto simulate = [&](const std::vector<Layout> &Layouts) {
    std::vector<MaterializedLayout> Mats;
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
      Mats.push_back(materializeLayout(W.Prog.proc(P), Layouts[P],
                                       Ds.Profile.Procs[P], Options.Model));
    SimConfig Config;
    return simulateProgram(W.Prog, Mats, Ds.Traces, Config);
  };

  SimResult Orig = simulate(Result.originalLayouts());
  SimResult Tsp = simulate(Result.tspLayouts());
  EXPECT_LT(Tsp.ControlPenaltyCycles, Orig.ControlPenaltyCycles);
  EXPECT_LT(Tsp.Cycles, Orig.Cycles);
  // Simulated penalties equal evaluator penalties (whole-program scale).
  EXPECT_EQ(Orig.ControlPenaltyCycles, Result.totalOriginalPenalty());
  EXPECT_EQ(Tsp.ControlPenaltyCycles, Result.totalTspPenalty());
}

/// The determinism matrix (tentpole contract): every benchmark of the
/// suite aligned at Threads in {1, 2, 8} — serial path, real
/// parallelism, and more workers than this machine has cores — must
/// produce bit-identical alignments, bounds included.
TEST(PipelineTest, ThreadCountNeverChangesResults) {
  bool BoundsChecked = false;
  for (const WorkloadSpec &Spec : benchmarkSuite()) {
    WorkloadInstance W = smallWorkload(Spec.Benchmark, /*BudgetCap=*/800);
    AlignmentOptions Options;
    // Bound determinism is covered once (Held-Karp subgradient descent is
    // the most expensive stage by far); layouts/penalties/statistics are
    // compared on every benchmark.
    Options.ComputeBounds = !BoundsChecked;
    BoundsChecked = true;
    Options.Threads = 1;
    ProgramAlignment Serial =
        alignProgram(W.Prog, W.DataSets[0].Profile, Options);
    for (unsigned Threads : {2u, 8u}) {
      Options.Threads = Threads;
      ProgramAlignment Parallel =
          alignProgram(W.Prog, W.DataSets[0].Profile, Options);
      expectAlignmentsIdentical(Serial, Parallel,
                                Spec.Benchmark + " threads=" +
                                    std::to_string(Threads));
    }
  }
}

/// Verify hooks (the stateful PipelineVerifier, with its per-procedure
/// stage cache) must see a coherent, serialized event stream at any
/// thread count — and instrumentation must not change results.
TEST(PipelineTest, ThreadedRunIdenticalUnderVerifyHooks) {
  WorkloadInstance W = smallWorkload("com", /*BudgetCap=*/2000);
  AlignmentOptions Options;
  ProgramAlignment Serial =
      alignProgram(W.Prog, W.DataSets[0].Profile, Options);
  for (unsigned Threads : {1u, 8u}) {
    AlignmentOptions Instrumented;
    Instrumented.Threads = Threads;
    DiagnosticEngine Diags;
    ProgramAlignment Result = alignProgramVerified(
        W.Prog, W.DataSets[0].Profile, Instrumented, Diags, VerifyOptions());
    EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
    expectAlignmentsIdentical(Serial, Result,
                              "verified threads=" + std::to_string(Threads));
  }
}

TEST(IntegrationTest, RunsFindingBestStatisticsPopulated) {
  WorkloadInstance W = smallWorkload("com", 2000);
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  ProgramAlignment Result =
      verifiedAlign(W.Prog, W.DataSets[1].Profile, Options);
  for (const ProcedureAlignment &PA : Result.Procs) {
    EXPECT_GE(PA.SolverRuns, 1u);
    EXPECT_GE(PA.RunsFindingBest, 1u);
    EXPECT_LE(PA.RunsFindingBest, PA.SolverRuns);
  }
}
