//===- tests/lint_test.cpp - balign-lint driver and effort-policy tests ---===//
//
// Covers the lint check driver end to end: zero findings on valid
// generator corpora, 100% detection on the seeded defect corpus,
// byte-identical reports across repeated runs, and the isolation
// guarantee that linting never perturbs alignment results or cache
// fingerprints (at any thread count). Also unit-tests the
// profile-guided effort policy the lint analyses feed.
//
//===--------------------------------------------------------------------===//

#include "align/Pipeline.h"
#include "cache/Fingerprint.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "static/EffortPolicy.h"
#include "static/Lint.h"
#include "static/Loops.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace balign;

namespace {

/// A small program of generator procedures plus trace-collected (hence
/// exactly flow-consistent) profiles.
struct Corpus {
  Program Prog{"corpus"};
  ProgramProfile Train;
};

Corpus buildCorpus(uint64_t Seed, unsigned NumProcs,
                   unsigned BranchSites = 6) {
  Corpus C;
  Rng Root(Seed);
  for (unsigned P = 0; P != NumProcs; ++P) {
    GenParams Params;
    Params.TargetBranchSites = 2 + (BranchSites + P) % 12;
    Params.LoopFraction = 0.15 + 0.05 * (P % 7);
    Rng R = Root.fork();
    C.Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
    Rng TraceRng = Root.fork();
    TraceGenOptions Opts;
    Opts.BranchBudget = 3000;
    const Procedure &Proc = C.Prog.proc(P);
    C.Train.Procs.push_back(collectProfile(
        Proc,
        generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng, Opts)));
  }
  return C;
}

//===--------------------------------------------------------------------===//
// Clean corpora produce zero findings
//===--------------------------------------------------------------------===//

TEST(LintTest, ValidGeneratedCorporaLintClean) {
  for (uint64_t Seed : {1u, 7u, 42u, 1997u}) {
    Corpus C = buildCorpus(Seed, 8);
    MachineModel Model = MachineModel::alpha21164();
    LintResult Result = lintProgram(C.Prog, &C.Train, &Model);
    EXPECT_EQ(Result.Diags.errorCount(), 0u) << Result.Diags.renderAll();
    EXPECT_EQ(Result.Diags.warningCount(), 0u) << Result.Diags.renderAll();
    EXPECT_TRUE(Result.Profiled);
    EXPECT_GT(Result.ChecksRun, 0u);
    EXPECT_EQ(Result.worstClass(), ProfileClass::Consistent);
    ASSERT_EQ(Result.ProcClasses.size(), C.Prog.numProcedures());
    for (ProfileClass PC : Result.ProcClasses)
      EXPECT_EQ(PC, ProfileClass::Consistent);
  }
}

TEST(LintTest, UnprofiledLintRunsStructuralChecksOnly) {
  Corpus C = buildCorpus(11, 4);
  LintResult Result = lintProgram(C.Prog, nullptr, nullptr);
  EXPECT_FALSE(Result.Profiled);
  EXPECT_TRUE(Result.ProcClasses.empty());
  EXPECT_EQ(Result.Diags.errorCount(), 0u) << Result.Diags.renderAll();
  EXPECT_EQ(Result.Diags.warningCount(), 0u) << Result.Diags.renderAll();
}

//===--------------------------------------------------------------------===//
// The seeded defect corpus is detected in full
//===--------------------------------------------------------------------===//

TEST(LintTest, EverySeededDefectIsDetected) {
  constexpr DefectKind Kinds[NumDefectKinds] = {
      DefectKind::IrreducibleLoop,      DefectKind::NoExitLoop,
      DefectKind::SelfLoopSpin,         DefectKind::UnreachableHot,
      DefectKind::StaleProfile,         DefectKind::ContradictoryProfile,
      DefectKind::SaturatedCounter,     DefectKind::OverflowCounter,
  };
  Rng Root(0xdefec7ULL);
  for (DefectKind Kind : Kinds) {
    for (unsigned Trial = 0; Trial != 12; ++Trial) {
      GenParams Params;
      Params.TargetBranchSites = 3 + Trial % 9;
      Rng R = Root.fork();
      Procedure Proc = generateProcedure(std::string(defectKindName(Kind)) +
                                             std::to_string(Trial),
                                         Params, R)
                           .Proc;
      Rng TraceRng = Root.fork();
      TraceGenOptions Opts;
      Opts.BranchBudget = 2000;
      ProcedureProfile Profile = collectProfile(
          Proc,
          generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng, Opts));

      CheckId Expected = seedDefect(Kind, Proc, Profile, R);
      DiagnosticEngine Diags;
      ProfileClass PC = ProfileClass::Consistent;
      lintProcedure(Proc, &Profile, LintOptions(), Diags, &PC);
      EXPECT_TRUE(Diags.has(Expected))
          << defectKindName(Kind) << " trial " << Trial << " missed "
          << checkIdName(Expected) << "\n"
          << Diags.renderAll();
      // Flow defects must also carry the right verdict.
      if (Kind == DefectKind::StaleProfile) {
        EXPECT_EQ(PC, ProfileClass::Repairable);
      }
      if (Kind == DefectKind::ContradictoryProfile) {
        EXPECT_EQ(PC, ProfileClass::Contradictory);
      }
    }
  }
}

TEST(LintTest, StaleProfileRepairIsSuggested) {
  Rng R(0x57a1eULL);
  GenParams Params;
  Params.TargetBranchSites = 6;
  Procedure Proc = generateProcedure("stale", Params, R).Proc;
  TraceGenOptions Opts;
  Opts.BranchBudget = 2000;
  ProcedureProfile Profile = collectProfile(
      Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), R, Opts));
  seedDefect(DefectKind::StaleProfile, Proc, Profile, R);
  DiagnosticEngine Diags;
  lintProcedure(Proc, &Profile, LintOptions(), Diags);
  EXPECT_TRUE(Diags.has(CheckId::LintFlowImbalance)) << Diags.renderAll();
  EXPECT_TRUE(Diags.has(CheckId::LintFlowRepair)) << Diags.renderAll();
}

TEST(LintTest, DeepNestIsReported) {
  // Eight nested do-while loops: block i+1 latches back to block i.
  Procedure Proc("deep");
  const unsigned Depth = 8;
  for (unsigned I = 0; I != Depth; ++I)
    Proc.addBlock({2, TerminatorKind::Conditional, ""});
  BlockId Ret = Proc.addBlock({1, TerminatorKind::Return, ""});
  for (unsigned I = 0; I != Depth; ++I) {
    // Successor 0: deeper (or self for the innermost); successor 1: back
    // out (or return for the outermost header).
    Proc.addEdge(I, I + 1 == Depth ? I : I + 1);
    Proc.addEdge(I, I == 0 ? Ret : I - 1);
  }
  ASSERT_TRUE(Proc.verify());
  DiagnosticEngine Diags;
  lintProcedure(Proc, nullptr, LintOptions(), Diags);
  EXPECT_TRUE(Diags.has(CheckId::LintDeepNest)) << Diags.renderAll();
}

//===--------------------------------------------------------------------===//
// Report determinism and the JSON export
//===--------------------------------------------------------------------===//

TEST(LintTest, ReportsAreByteIdenticalAcrossRuns) {
  Corpus C = buildCorpus(77, 6);
  // Make the report non-trivial: one seeded defect per flavor.
  Rng R(0x9ULL);
  seedDefect(DefectKind::StaleProfile, C.Prog.proc(0), C.Train.Procs[0], R);
  seedDefect(DefectKind::IrreducibleLoop, C.Prog.proc(1), C.Train.Procs[1],
             R);
  MachineModel Model = MachineModel::alpha21164();

  LintResult First = lintProgram(C.Prog, &C.Train, &Model);
  std::string FirstText = First.Diags.renderAll();
  std::string FirstJson = lintReportJson(First);
  for (int Run = 0; Run != 3; ++Run) {
    LintResult Again = lintProgram(C.Prog, &C.Train, &Model);
    EXPECT_EQ(Again.Diags.renderAll(), FirstText);
    EXPECT_EQ(lintReportJson(Again), FirstJson);
  }
  EXPECT_NE(FirstJson.find("\"version\":1"), std::string::npos);
  EXPECT_NE(FirstJson.find("\"findings\":["), std::string::npos);
  EXPECT_NE(FirstJson.find("lint.flow-imbalance"), std::string::npos);
  EXPECT_NE(FirstJson.find("lint.irreducible-loop"), std::string::npos);
  EXPECT_NE(FirstJson.find("\"repairable\""), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Isolation: lint never perturbs alignment or cache identity
//===--------------------------------------------------------------------===//

TEST(LintTest, LintDoesNotPerturbAlignmentAtAnyThreadCount) {
  Corpus C = buildCorpus(2026, 6);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  Options.Solver.GreedyStarts = 2;
  Options.Solver.NearestNeighborStarts = 1;
  Options.Solver.IterationsFactor = 2.0;

  // Baseline: no lint anywhere near the pipeline.
  Options.Threads = 1;
  ProgramAlignment Baseline = alignProgram(C.Prog, C.Train, Options);
  std::vector<Fingerprint> BaseKeys;
  for (size_t P = 0; P != C.Prog.numProcedures(); ++P)
    BaseKeys.push_back(fingerprintProcedureInputs(
        C.Prog.proc(P), C.Train.Procs[P], Options, P));

  // Lint the same inputs, then re-align at several thread counts: the
  // layouts and the cache fingerprints must be bit-identical.
  LintResult Lint = lintProgram(C.Prog, &C.Train, &Model);
  std::string Report = lintReportJson(Lint);
  for (unsigned Threads : {1u, 8u}) {
    Options.Threads = Threads;
    ProgramAlignment After = alignProgram(C.Prog, C.Train, Options);
    ASSERT_EQ(After.Procs.size(), Baseline.Procs.size());
    for (size_t P = 0; P != After.Procs.size(); ++P) {
      EXPECT_EQ(After.Procs[P].TspLayout.Order,
                Baseline.Procs[P].TspLayout.Order)
          << "thread count " << Threads << " proc " << P;
      EXPECT_EQ(After.Procs[P].GreedyLayout.Order,
                Baseline.Procs[P].GreedyLayout.Order);
      EXPECT_EQ(After.Procs[P].TspPenalty, Baseline.Procs[P].TspPenalty);
      EXPECT_EQ(fingerprintProcedureInputs(C.Prog.proc(P), C.Train.Procs[P],
                                           Options, P),
                BaseKeys[P]);
    }
    // And lint itself stays byte-stable when interleaved with aligning.
    LintResult Again = lintProgram(C.Prog, &C.Train, &Model);
    EXPECT_EQ(lintReportJson(Again), Report);
  }
}

//===--------------------------------------------------------------------===//
// Profile-guided effort policy
//===--------------------------------------------------------------------===//

/// A procedure with ~NumCond conditional diamonds and, when \p Loop,
/// a two-deep loop nest around the whole body.
Procedure effortProc(unsigned NumCond, bool Loop) {
  Rng R(31 + NumCond + (Loop ? 1 : 0));
  GenParams Params;
  Params.TargetBranchSites = NumCond;
  Params.LoopFraction = Loop ? 0.8 : 0.0;
  Params.MultiwayFraction = 0.0;
  return generateProcedure("effort", Params, R).Proc;
}

TEST(EffortPolicyTest, UniformPolicyNeverChangesAnything) {
  IteratedOptOptions Base;
  for (unsigned Sites : {2u, 40u}) {
    Procedure Proc = effortProc(Sites, true);
    ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
    EffortDecision D =
        decideEffort(Proc, Profile, Base, EffortPolicy::Uniform);
    EXPECT_FALSE(D.GreedyOnly);
    EXPECT_EQ(D.Solver.IterationsFactor, Base.IterationsFactor);
    EXPECT_EQ(D.Solver.GreedyStarts, Base.GreedyStarts);
    EXPECT_EQ(D.Solver.Seed, Base.Seed);
  }
}

TEST(EffortPolicyTest, ScaledPolicyHalvesLoopFreeEffort) {
  IteratedOptOptions Base;
  Procedure Proc = effortProc(6, /*Loop=*/false);
  // Loop-free by construction.
  DominatorTree Dom = DominatorTree::compute(Proc);
  ASSERT_EQ(LoopInfo::compute(Proc, Dom).maxDepth(), 0u);
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  EffortDecision D = decideEffort(Proc, Profile, Base, EffortPolicy::Scaled);
  EXPECT_FALSE(D.GreedyOnly);
  EXPECT_EQ(D.Solver.IterationsFactor, Base.IterationsFactor / 2);
}

TEST(EffortPolicyTest, ColdGreedyPolicyRoutesTinyProcsToGreedy) {
  IteratedOptOptions Base;
  Procedure Proc = effortProc(2, false);
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  // Zero executed branches: far below the cold threshold.
  EffortDecision D =
      decideEffort(Proc, Profile, Base, EffortPolicy::ScaledColdGreedy);
  EXPECT_TRUE(D.GreedyOnly);
  // The plain Scaled policy never routes to greedy-only.
  EXPECT_FALSE(
      decideEffort(Proc, Profile, Base, EffortPolicy::Scaled).GreedyOnly);
}

TEST(EffortPolicyTest, PolicyNamesRoundTrip) {
  for (EffortPolicy P : {EffortPolicy::Uniform, EffortPolicy::Scaled,
                         EffortPolicy::ScaledColdGreedy}) {
    EffortPolicy Parsed = EffortPolicy::Uniform;
    ASSERT_TRUE(parseEffortPolicy(effortPolicyName(P), Parsed));
    EXPECT_EQ(Parsed, P);
  }
  EffortPolicy Parsed = EffortPolicy::Uniform;
  EXPECT_FALSE(parseEffortPolicy("bogus", Parsed));
}

} // namespace
