//===- tests/workloads_test.cpp - Synthetic benchmark suite tests -------------===//

#include "workloads/Generator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace balign;

TEST(GeneratorTest, ProceduresVerifyAcrossSeeds) {
  for (uint64_t Seed = 1; Seed != 30; ++Seed) {
    Rng R(Seed);
    GenParams Params;
    Params.TargetBranchSites = 1 + Seed % 20;
    Params.MultiwayFraction = 0.1;
    GeneratedProcedure Gen = generateProcedure("g", Params, R);
    std::string Error;
    EXPECT_TRUE(Gen.Proc.verify(&Error)) << Error;
    EXPECT_EQ(Gen.LoopStayIndex.size(), Gen.Proc.numBlocks());
  }
}

TEST(GeneratorTest, HitsBranchSiteTargetApproximately) {
  Rng R(17);
  GenParams Params;
  Params.TargetBranchSites = 25;
  GeneratedProcedure Gen = generateProcedure("g", Params, R);
  // The budget is consumed exactly by construction.
  EXPECT_EQ(Gen.Proc.numBranchSites(), 25u);
}

TEST(GeneratorTest, LoopHeadersTaggedCorrectly) {
  Rng R(23);
  GenParams Params;
  Params.TargetBranchSites = 30;
  Params.LoopFraction = 0.8;
  GeneratedProcedure Gen = generateProcedure("g", Params, R);
  size_t Headers = 0;
  for (BlockId B = 0; B != Gen.Proc.numBlocks(); ++B) {
    if (Gen.LoopStayIndex[B] < 0)
      continue;
    ++Headers;
    EXPECT_EQ(Gen.Proc.block(B).Kind, TerminatorKind::Conditional);
    // The stay edge loops: the header must be reachable from it without
    // leaving through the header's exit — weak check: stay successor is
    // not the same as the exit successor.
    EXPECT_LT(static_cast<size_t>(Gen.LoopStayIndex[B]),
              Gen.Proc.successors(B).size());
  }
  EXPECT_GT(Headers, 0u);
}

TEST(GeneratorTest, DeterministicForSeed) {
  GenParams Params;
  Params.TargetBranchSites = 12;
  Rng A(5), B(5);
  GeneratedProcedure GA = generateProcedure("a", Params, A);
  GeneratedProcedure GB = generateProcedure("a", Params, B);
  ASSERT_EQ(GA.Proc.numBlocks(), GB.Proc.numBlocks());
  for (BlockId Id = 0; Id != GA.Proc.numBlocks(); ++Id) {
    EXPECT_EQ(GA.Proc.block(Id).Kind, GB.Proc.block(Id).Kind);
    EXPECT_EQ(GA.Proc.block(Id).InstrCount, GB.Proc.block(Id).InstrCount);
    EXPECT_EQ(GA.Proc.successors(Id), GB.Proc.successors(Id));
  }
}

TEST(SuiteTest, HasSixBenchmarksWithTwoDataSetsEach) {
  const std::vector<WorkloadSpec> &Suite = benchmarkSuite();
  ASSERT_EQ(Suite.size(), 6u);
  std::vector<std::string> Names;
  for (const WorkloadSpec &Spec : Suite) {
    Names.push_back(Spec.Benchmark);
    EXPECT_EQ(Spec.DataSets.size(), 2u);
    EXPECT_FALSE(Spec.Description.empty());
  }
  EXPECT_EQ(Names, (std::vector<std::string>{"com", "dod", "eqn", "esp",
                                             "su2", "xli"}));
}

TEST(SuiteTest, EspressoHas179Procedures) {
  // The paper's appendix analyzes the 179 procedures of esp.tl.
  for (const WorkloadSpec &Spec : benchmarkSuite()) {
    if (Spec.Benchmark == "esp") {
      EXPECT_EQ(Spec.NumProcs, 179u);
    }
  }
}

TEST(SuiteTest, BuildsComWithBudgetsAndValidProfiles) {
  WorkloadInstance W = buildWorkloadByName("com");
  std::string Error;
  EXPECT_TRUE(W.Prog.verify(&Error)) << Error;
  ASSERT_EQ(W.DataSets.size(), 2u);
  EXPECT_EQ(W.dataSetLabel(0), "com.in");
  EXPECT_EQ(W.dataSetLabel(1), "com.st");

  for (const WorkloadDataSet &Ds : W.DataSets) {
    uint64_t Executed = Ds.Profile.executedBranches(W.Prog);
    // Budget respected within one invocation of overshoot per procedure.
    EXPECT_GE(Executed, Ds.BranchBudget * 95 / 100);
    EXPECT_LE(Executed, Ds.BranchBudget * 130 / 100);
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
      EXPECT_TRUE(Ds.Behaviors[P].isValid(W.Prog.proc(P)));
      EXPECT_TRUE(Ds.Profile.Procs[P].isFlowConsistent(W.Prog.proc(P)));
    }
  }
}

TEST(SuiteTest, DataSetsShareProgramButDifferInProfiles) {
  WorkloadInstance W = buildWorkloadByName("eqn");
  const ProgramProfile &A = W.DataSets[0].Profile;
  const ProgramProfile &B = W.DataSets[1].Profile;
  // Same shape (same program) ...
  ASSERT_EQ(A.Procs.size(), B.Procs.size());
  // ... but different edge counts overall.
  bool Differs = false;
  for (size_t P = 0; P != A.Procs.size() && !Differs; ++P)
    Differs = A.Procs[P].EdgeCounts != B.Procs[P].EdgeCounts;
  EXPECT_TRUE(Differs);
}

TEST(SuiteTest, BuildIsDeterministic) {
  WorkloadInstance A = buildWorkloadByName("com");
  WorkloadInstance B = buildWorkloadByName("com");
  ASSERT_EQ(A.Prog.numProcedures(), B.Prog.numProcedures());
  for (size_t P = 0; P != A.Prog.numProcedures(); ++P) {
    EXPECT_EQ(A.DataSets[0].Profile.Procs[P].EdgeCounts,
              B.DataSets[0].Profile.Procs[P].EdgeCounts);
    EXPECT_EQ(A.DataSets[1].Profile.Procs[P].BlockCounts,
              B.DataSets[1].Profile.Procs[P].BlockCounts);
  }
}

TEST(SuiteTest, XliNeIsTinyRelativeToQ7) {
  // Table 1: xli.ne executes ~0.1M branches, xli.q7 ~42M (we scale by
  // 1/1000); ne consequently touches fewer branch sites.
  WorkloadInstance W = buildWorkloadByName("xli");
  const WorkloadDataSet &Ne = W.DataSets[0];
  const WorkloadDataSet &Q7 = W.DataSets[1];
  EXPECT_LT(Ne.Profile.executedBranches(W.Prog) * 50,
            Q7.Profile.executedBranches(W.Prog));
  EXPECT_LT(Ne.Profile.branchSitesTouched(W.Prog),
            Q7.Profile.branchSitesTouched(W.Prog));
}

TEST(SuiteTest, TouchedSitesBelowStaticSites) {
  WorkloadInstance W = buildWorkloadByName("dod");
  size_t StaticSites = 0;
  for (const Procedure &P : W.Prog.procedures())
    StaticSites += P.numBranchSites();
  for (const WorkloadDataSet &Ds : W.DataSets) {
    size_t Touched = Ds.Profile.branchSitesTouched(W.Prog);
    EXPECT_LE(Touched, StaticSites);
    EXPECT_GT(Touched, StaticSites / 5); // Not absurdly cold either.
  }
}
