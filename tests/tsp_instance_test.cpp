//===- tests/tsp_instance_test.cpp - Instance and transform tests -------------===//

#include "support/Random.h"
#include "tsp/Construct.h"
#include "tsp/Instance.h"
#include "tsp/Transform.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

DirectedTsp randomInstance(size_t N, uint64_t Seed, int64_t MaxCost = 100) {
  Rng R(Seed);
  DirectedTsp Dtsp(N);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        Dtsp.setCost(I, J, static_cast<int64_t>(R.nextBelow(MaxCost + 1)));
  return Dtsp;
}

} // namespace

TEST(InstanceTest, TourAndWalkCosts) {
  DirectedTsp D(3);
  D.setCost(0, 1, 5);
  D.setCost(1, 2, 7);
  D.setCost(2, 0, 11);
  D.setCost(0, 2, 1);
  D.setCost(2, 1, 2);
  D.setCost(1, 0, 3);
  EXPECT_EQ(D.tourCost({0, 1, 2}), 5 + 7 + 11);
  EXPECT_EQ(D.tourCost({0, 2, 1}), 1 + 2 + 3);
  EXPECT_EQ(D.walkCost({0, 1, 2}), 5 + 7);
  EXPECT_EQ(D.totalAbsCost(), 5 + 7 + 11 + 1 + 2 + 3);
}

TEST(InstanceTest, ValidTourChecks) {
  EXPECT_TRUE(isValidTour({0, 2, 1}, 3));
  EXPECT_FALSE(isValidTour({0, 1}, 3));      // Too short.
  EXPECT_FALSE(isValidTour({0, 1, 1}, 3));   // Duplicate.
  EXPECT_FALSE(isValidTour({0, 1, 3}, 3));   // Out of range.
}

TEST(TransformTest, SymmetricCostEqualsDirectedMinusLocks) {
  DirectedTsp D = randomInstance(7, 101);
  SymmetricTransform T = transformToSymmetric(D);
  Rng R(55);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::vector<City> Tour = canonicalTour(7);
    // Random directed tour (city order shuffled).
    R.shuffle(Tour);
    std::vector<City> Sym = T.toSymmetricTour(Tour);
    EXPECT_TRUE(isValidTour(Sym, 14));
    EXPECT_EQ(T.toDirectedCost(T.Sym.tourCost(Sym)), D.tourCost(Tour));
  }
}

TEST(TransformTest, RoundTripPreservesTours) {
  DirectedTsp D = randomInstance(9, 202);
  SymmetricTransform T = transformToSymmetric(D);
  Rng R(77);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::vector<City> Tour = canonicalTour(9);
    R.shuffle(Tour);
    std::vector<City> Back = T.toDirectedTour(T.toSymmetricTour(Tour));
    // The directed tour is cyclic: rotate Back so it starts like Tour.
    size_t Offset = 0;
    while (Back[Offset] != Tour[0])
      ++Offset;
    for (size_t I = 0; I != Tour.size(); ++I)
      EXPECT_EQ(Back[(Offset + I) % Back.size()], Tour[I]);
  }
}

TEST(TransformTest, ReversedSymmetricTourStillCollapses) {
  DirectedTsp D = randomInstance(5, 33);
  SymmetricTransform T = transformToSymmetric(D);
  std::vector<City> Tour = {0, 3, 1, 4, 2};
  std::vector<City> Sym = T.toSymmetricTour(Tour);
  std::reverse(Sym.begin(), Sym.end());
  std::vector<City> Back = T.toDirectedTour(Sym);
  EXPECT_EQ(D.tourCost(Back), D.tourCost(Tour));
}

TEST(TransformTest, LockBonusDominatesRealCosts) {
  DirectedTsp D = randomInstance(6, 44);
  SymmetricTransform T = transformToSymmetric(D);
  EXPECT_GT(T.LockBonus, D.totalAbsCost());
  // Pair edges are the lock bonus; real arcs appear as out->in edges.
  EXPECT_EQ(T.Sym.dist(2, 2 + 6), -T.LockBonus);
  EXPECT_EQ(T.Sym.dist(2 + 6, 3), D.cost(2, 3));
  // In->in edges are forbidden.
  EXPECT_EQ(T.Sym.dist(1, 2), T.LockBonus);
}

TEST(ConstructTest, NearestNeighborProducesValidTours) {
  DirectedTsp D = randomInstance(20, 7);
  Rng R(8);
  for (int Trial = 0; Trial != 10; ++Trial)
    EXPECT_TRUE(isValidTour(nearestNeighborTour(D, R), 20));
}

TEST(ConstructTest, GreedyEdgeProducesValidTours) {
  DirectedTsp D = randomInstance(20, 9);
  Rng R(10);
  for (int Trial = 0; Trial != 10; ++Trial)
    EXPECT_TRUE(isValidTour(greedyEdgeTour(D, R), 20));
}

TEST(ConstructTest, HeuristicsBeatRandomOnAverage) {
  DirectedTsp D = randomInstance(30, 11);
  Rng R(12);
  std::vector<City> Random = canonicalTour(30);
  R.shuffle(Random);
  int64_t RandomCost = D.tourCost(Random);
  int64_t NnCost = D.tourCost(nearestNeighborTour(D, R, 1));
  int64_t GreedyCost = D.tourCost(greedyEdgeTour(D, R));
  EXPECT_LT(NnCost, RandomCost);
  EXPECT_LT(GreedyCost, RandomCost);
}

TEST(ConstructTest, TinyInstances) {
  DirectedTsp D = randomInstance(1, 1);
  Rng R(2);
  EXPECT_EQ(nearestNeighborTour(D, R), std::vector<City>{0});
  EXPECT_EQ(greedyEdgeTour(D, R), std::vector<City>{0});
  EXPECT_EQ(canonicalTour(3), (std::vector<City>{0, 1, 2}));
}
