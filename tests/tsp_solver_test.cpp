//===- tests/tsp_solver_test.cpp - Local search and iterated-3-Opt tests ------===//

#include "support/Random.h"
#include "tsp/Construct.h"
#include "tsp/Exact.h"
#include "tsp/Instance.h"
#include "tsp/IteratedOpt.h"
#include "tsp/LocalSearch.h"
#include "tsp/Transform.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace balign;

namespace {

DirectedTsp randomInstance(size_t N, uint64_t Seed, int64_t MaxCost = 100) {
  Rng R(Seed);
  DirectedTsp Dtsp(N);
  for (City I = 0; I != N; ++I)
    for (City J = 0; J != N; ++J)
      if (I != J)
        Dtsp.setCost(I, J, static_cast<int64_t>(R.nextBelow(MaxCost + 1)));
  return Dtsp;
}

/// Brute-force optimal directed tour cost (city 0 fixed), for N <= 9.
int64_t bruteForce(const DirectedTsp &D) {
  size_t N = D.numCities();
  std::vector<City> Perm(N - 1);
  std::iota(Perm.begin(), Perm.end(), 1);
  int64_t Best = INT64_MAX;
  do {
    std::vector<City> Tour;
    Tour.push_back(0);
    Tour.insert(Tour.end(), Perm.begin(), Perm.end());
    Best = std::min(Best, D.tourCost(Tour));
  } while (std::next_permutation(Perm.begin(), Perm.end()));
  return Best;
}

} // namespace

TEST(ExactTest, MatchesBruteForceOnRandomInstances) {
  for (uint64_t Seed = 1; Seed != 15; ++Seed) {
    size_t N = 2 + Seed % 6; // 2..7 cities.
    DirectedTsp D = randomInstance(N, Seed);
    std::vector<City> Tour;
    int64_t Cost = solveExactDirected(D, &Tour);
    EXPECT_EQ(Cost, bruteForce(D)) << "seed " << Seed;
    EXPECT_TRUE(isValidTour(Tour, N));
    EXPECT_EQ(D.tourCost(Tour), Cost);
  }
}

TEST(ExactTest, HandlesTrivialSizes) {
  DirectedTsp One(1);
  std::vector<City> Tour;
  EXPECT_EQ(solveExactDirected(One, &Tour), 0);
  EXPECT_EQ(Tour, std::vector<City>{0});

  DirectedTsp Two(2);
  Two.setCost(0, 1, 4);
  Two.setCost(1, 0, 9);
  EXPECT_EQ(solveExactDirected(Two, &Tour), 13);
}

TEST(LocalSearchTest, NeverWorsensAndStaysValid) {
  for (uint64_t Seed = 1; Seed != 8; ++Seed) {
    DirectedTsp D = randomInstance(15, Seed * 31);
    SymmetricTransform T = transformToSymmetric(D);
    NeighborLists Neighbors(T.Sym, 10);
    Rng R(Seed);
    std::vector<City> Dir = canonicalTour(15);
    R.shuffle(Dir);
    std::vector<City> Sym = T.toSymmetricTour(Dir);
    int64_t Before = T.Sym.tourCost(Sym);
    int64_t After = localSearchSymmetric(T.Sym, Neighbors, Sym);
    EXPECT_LE(After, Before);
    EXPECT_TRUE(isValidTour(Sym, 30));
    // Pair edges survive local search, so the tour collapses.
    std::vector<City> Back = T.toDirectedTour(Sym);
    EXPECT_EQ(D.tourCost(Back), T.toDirectedCost(After));
  }
}

TEST(LocalSearchTest, ReachesTwoOptLocalOptimum) {
  DirectedTsp D = randomInstance(12, 99);
  SymmetricTransform T = transformToSymmetric(D);
  NeighborLists Neighbors(T.Sym, 23); // Full lists.
  std::vector<City> Sym = T.toSymmetricTour(canonicalTour(12));
  localSearchSymmetric(T.Sym, Neighbors, Sym);
  int64_t Cost = T.Sym.tourCost(Sym);

  // No single 2-opt move may improve the result further.
  size_t N = Sym.size();
  for (size_t I = 0; I + 2 < N; ++I) {
    for (size_t J = I + 2; J < N; ++J) {
      if (I == 0 && J + 1 == N)
        continue;
      std::vector<City> Alt = Sym;
      std::reverse(Alt.begin() + I + 1, Alt.begin() + J + 1);
      EXPECT_GE(T.Sym.tourCost(Alt), Cost)
          << "improving 2-opt move left at (" << I << "," << J << ")";
    }
  }
}

TEST(DoubleBridgeTest, PreservesPermutationAndStart) {
  Rng R(5);
  for (size_t N : {4u, 5u, 8u, 20u, 101u}) {
    std::vector<City> Tour = canonicalTour(N);
    doubleBridge(Tour, R);
    EXPECT_TRUE(isValidTour(Tour, N));
    EXPECT_EQ(Tour[0], 0u) << "double bridge must keep segment A first";
  }
}

TEST(DoubleBridgeTest, TinyToursUntouched) {
  Rng R(6);
  std::vector<City> Tour = {0, 1, 2};
  doubleBridge(Tour, R);
  EXPECT_EQ(Tour, (std::vector<City>{0, 1, 2}));
}

TEST(DoubleBridgeTest, ActuallyPerturbs) {
  Rng R(7);
  std::vector<City> Tour = canonicalTour(30);
  doubleBridge(Tour, R);
  EXPECT_NE(Tour, canonicalTour(30));
}

/// Property sweep: iterated 3-Opt matches the exact optimum on small
/// random instances across many seeds.
class IteratedOptOptimality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IteratedOptOptimality, FindsOptimumOnSmallInstances) {
  uint64_t Seed = GetParam();
  size_t N = 4 + Seed % 9; // 4..12 cities.
  DirectedTsp D = randomInstance(N, Seed * 13 + 1);
  IteratedOptOptions Options;
  Options.Seed = Seed;
  DtspSolution Solution = solveDirectedTsp(D, Options);
  EXPECT_TRUE(isValidTour(Solution.Tour, N));
  EXPECT_EQ(D.tourCost(Solution.Tour), Solution.Cost);
  EXPECT_EQ(Solution.Cost, solveExactDirected(D)) << "N=" << N;
  EXPECT_EQ(Solution.NumRuns, 10u);
  EXPECT_GE(Solution.RunsFindingBest, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteratedOptOptimality,
                         ::testing::Range<uint64_t>(1, 26));

TEST(IteratedOptTest, NearOptimalOnMediumInstances) {
  // 16-18 cities: still exactly solvable; allow a sliver of slack.
  for (uint64_t Seed = 1; Seed != 5; ++Seed) {
    size_t N = 16 + Seed % 3;
    DirectedTsp D = randomInstance(N, Seed * 7 + 3);
    IteratedOptOptions Options;
    Options.Seed = Seed;
    DtspSolution Solution = solveDirectedTsp(D, Options);
    int64_t Optimal = solveExactDirected(D);
    EXPECT_GE(Solution.Cost, Optimal);
    EXPECT_LE(static_cast<double>(Solution.Cost),
              static_cast<double>(Optimal) * 1.05 + 1.0)
        << "seed " << Seed;
  }
}

TEST(IteratedOptTest, TrivialSizes) {
  IteratedOptOptions Options;
  DirectedTsp Two(2);
  Two.setCost(0, 1, 3);
  Two.setCost(1, 0, 4);
  DtspSolution S = solveDirectedTsp(Two, Options);
  EXPECT_EQ(S.Cost, 7);

  DirectedTsp Three(3);
  Three.setCost(0, 1, 1);
  Three.setCost(1, 2, 1);
  Three.setCost(2, 0, 1);
  Three.setCost(0, 2, 10);
  Three.setCost(2, 1, 10);
  Three.setCost(1, 0, 10);
  S = solveDirectedTsp(Three, Options);
  EXPECT_EQ(S.Cost, 3);
}

TEST(IteratedOptTest, DeterministicForFixedSeed) {
  DirectedTsp D = randomInstance(20, 555);
  IteratedOptOptions Options;
  Options.Seed = 77;
  DtspSolution A = solveDirectedTsp(D, Options);
  DtspSolution B = solveDirectedTsp(D, Options);
  EXPECT_EQ(A.Cost, B.Cost);
  EXPECT_EQ(A.Tour, B.Tour);
  EXPECT_EQ(A.RunsFindingBest, B.RunsFindingBest);
}
