//===- tests/parser_negative_test.cpp - Parser hardening tests ----------------===//
//
// Negative-path coverage for the textual CFG and profile parsers: every
// rejection must come back as a clean error string (never a crash, never
// a silently half-built result), including duplicate definitions and
// truncated files.
//
//===--------------------------------------------------------------------===//

#include "ir/TextFormat.h"
#include "profile/ProfileIO.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

const char *ValidProgram = R"(program t
proc f {
  a: size 2 cond -> b c
  b: size 2 jump -> d
  c: size 3 jump -> d
  d: size 1 ret
}
proc g {
  x: size 4 jump -> y
  y: size 1 ret
}
)";

const char *ValidProfile = R"(profile t
proc f {
  a: 10 -> b:6 c:4
  b: 6 -> d:6
  c: 4 -> d:4
  d: 10
}
proc g {
  x: 3 -> y:3
  y: 3
}
)";

Program parsedProgram() {
  std::string Error;
  std::optional<Program> Prog = parseProgram(ValidProgram, &Error);
  EXPECT_TRUE(Prog) << Error;
  return *Prog;
}

void expectProgramRejected(const std::string &Text,
                           const std::string &Needle) {
  std::string Error;
  std::optional<Program> Prog = parseProgram(Text, &Error);
  EXPECT_FALSE(Prog) << "parse accepted: " << Text;
  EXPECT_NE(Error.find(Needle), std::string::npos)
      << "error '" << Error << "' lacks '" << Needle << "'";
}

void expectProfileRejected(const std::string &Text,
                           const std::string &Needle) {
  Program Prog = parsedProgram();
  std::string Error;
  std::optional<ProgramProfile> Profile =
      parseProgramProfile(Prog, Text, &Error);
  EXPECT_FALSE(Profile) << "parse accepted: " << Text;
  EXPECT_NE(Error.find(Needle), std::string::npos)
      << "error '" << Error << "' lacks '" << Needle << "'";
}

} // namespace

//===----------------------------------------------------------------------===//
// CFG text format
//===----------------------------------------------------------------------===//

TEST(TextFormatNegativeTest, ValidInputRoundTrips) {
  Program Prog = parsedProgram();
  EXPECT_EQ(Prog.numProcedures(), 2u);
  EXPECT_EQ(Prog.proc(0).numBlocks(), 4u);
}

TEST(TextFormatNegativeTest, RejectsDuplicateProcedure) {
  expectProgramRejected("program t\n"
                        "proc f {\n  a: size 1 ret\n}\n"
                        "proc f {\n  a: size 1 ret\n}\n",
                        "duplicate procedure 'f'");
}

TEST(TextFormatNegativeTest, RejectsDuplicateBlockName) {
  expectProgramRejected("program t\n"
                        "proc f {\n"
                        "  a: size 1 jump -> a\n"
                        "  a: size 1 ret\n"
                        "}\n",
                        "duplicate");
}

TEST(TextFormatNegativeTest, RejectsUnknownSuccessor) {
  expectProgramRejected("program t\n"
                        "proc f {\n  a: size 1 jump -> nowhere\n}\n",
                        "nowhere");
}

TEST(TextFormatNegativeTest, RejectsOversizedBlock) {
  // A crafted huge block must be rejected at parse time: address
  // assignment multiplies InstrCount by BytesPerInstr and sums over
  // items, and the MaxBlockInstrCount bound is what keeps that
  // arithmetic from wrapping (balign-displace).
  expectProgramRejected("program t\n"
                        "proc f {\n  a: size 999999999 ret\n}\n",
                        "exceeds the limit");
  // One past the bound fails, the bound itself parses.
  expectProgramRejected("program t\n"
                        "proc f {\n  a: size 268435457 ret\n}\n",
                        "exceeds the limit");
  std::string Error;
  EXPECT_TRUE(parseProgram("program t\n"
                           "proc f {\n  a: size 268435456 ret\n}\n",
                           &Error))
      << Error;
}

TEST(TextFormatNegativeTest, RejectsTruncatedFile) {
  // File ends mid-procedure: the closing brace never arrives.
  expectProgramRejected("program t\n"
                        "proc f {\n"
                        "  a: size 2 jump -> b\n"
                        "  b: size 1 ret\n",
                        "unterminated proc 'f'");
}

TEST(TextFormatNegativeTest, RejectsMissingHeader) {
  expectProgramRejected("proc f {\n  a: size 1 ret\n}\n", "header");
}

TEST(TextFormatNegativeTest, RejectsEmptyProgram) {
  expectProgramRejected("program t\n", "no procedures");
}

//===----------------------------------------------------------------------===//
// Profile text format
//===----------------------------------------------------------------------===//

TEST(ProfileIONegativeTest, ValidProfileParses) {
  Program Prog = parsedProgram();
  std::string Error;
  std::optional<ProgramProfile> Profile =
      parseProgramProfile(Prog, ValidProfile, &Error);
  ASSERT_TRUE(Profile) << Error;
  EXPECT_EQ(Profile->Procs[0].BlockCounts[0], 10u);
  EXPECT_EQ(Profile->Procs[0].EdgeCounts[0][1], 4u);
}

TEST(ProfileIONegativeTest, RejectsDuplicateProcSection) {
  expectProfileRejected("profile t\n"
                        "proc g {\n  x: 1 -> y:1\n  y: 1\n}\n"
                        "proc g {\n  x: 2 -> y:2\n  y: 2\n}\n",
                        "duplicate profile section for procedure 'g'");
}

TEST(ProfileIONegativeTest, RejectsDuplicateBlockLine) {
  expectProfileRejected("profile t\n"
                        "proc g {\n"
                        "  x: 1 -> y:1\n"
                        "  x: 2 -> y:2\n"
                        "  y: 1\n"
                        "}\n",
                        "duplicate stats line for block 'x'");
}

TEST(ProfileIONegativeTest, RejectsDuplicateEdgeMention) {
  expectProfileRejected("profile t\n"
                        "proc f {\n"
                        "  a: 10 -> b:6 b:4\n"
                        "}\n",
                        "duplicate edge count for a -> b");
}

TEST(ProfileIONegativeTest, RejectsUnknownProcedure) {
  expectProfileRejected("profile t\nproc zz {\n}\n", "unknown procedure");
}

TEST(ProfileIONegativeTest, RejectsUnknownBlock) {
  expectProfileRejected("profile t\nproc f {\n  zz: 1\n}\n",
                        "unknown block");
}

TEST(ProfileIONegativeTest, RejectsEdgeAbsentFromCfg) {
  // d is a real block but there is no edge b -> a in the CFG.
  expectProfileRejected("profile t\n"
                        "proc f {\n  b: 6 -> a:6\n}\n",
                        "does not exist in the CFG");
}

TEST(ProfileIONegativeTest, RejectsBadCount) {
  expectProfileRejected("profile t\nproc f {\n  a: many\n}\n",
                        "bad block count");
}

TEST(ProfileIONegativeTest, RejectsTruncatedFile) {
  expectProfileRejected("profile t\n"
                        "proc f {\n"
                        "  a: 10 -> b:6 c:4\n",
                        "unterminated proc 'f'");
}
