//===- tests/align_bounds_test.cpp - Penalty lower-bound tests ----------------===//

#include "align/Aligners.h"
#include "align/Bounds.h"
#include "align/Penalty.h"
#include "align/Reduction.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "tsp/Exact.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

const MachineModel Alpha = MachineModel::alpha21164();

struct RandomCase {
  Procedure Proc{"empty"};
  ProcedureProfile Profile;

  explicit RandomCase(uint64_t Seed, unsigned Sites) {
    Rng StructureRng(Seed * 3 + 11);
    GenParams Params;
    Params.TargetBranchSites = Sites;
    GeneratedProcedure Gen = generateProcedure("b", Params, StructureRng);
    Proc = std::move(Gen.Proc);
    Rng TraceRng(Seed * 7 + 13);
    TraceGenOptions Options;
    Options.BranchBudget = 400;
    Profile = collectProfile(
        Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                            Options));
  }
};

} // namespace

/// Property sweep: both bounds sit at or below the exact optimal penalty.
class BoundsValidity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundsValidity, BoundsBelowExactOptimum) {
  uint64_t Seed = GetParam();
  RandomCase C(Seed, /*Sites=*/4);
  if (C.Proc.numBlocks() + 1 > MaxExactCities)
    GTEST_SKIP() << "too large for the exact oracle";

  AlignmentTsp Atsp = buildAlignmentTsp(C.Proc, C.Profile, Alpha);
  int64_t Optimal = solveExactDirected(Atsp.Tsp);
  ASSERT_GE(Optimal, 0);

  PenaltyBounds Bounds = computePenaltyBounds(
      C.Proc, C.Profile, Alpha, static_cast<uint64_t>(Optimal));
  EXPECT_LE(Bounds.HeldKarp, static_cast<double>(Optimal) + 1e-6);
  EXPECT_LE(Bounds.Assignment, Optimal);
  EXPECT_GE(Bounds.HeldKarp, 0.0);
  EXPECT_GE(Bounds.Assignment, 0);
  EXPECT_GE(Bounds.AssignmentCycles, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsValidity,
                         ::testing::Range<uint64_t>(1, 13));

TEST(BoundsTest, HeldKarpTightOnAlignmentInstances) {
  // The paper: HK bounds average within 0.3% of the tours found. Check
  // the aggregate gap against the TSP aligner on random procedures.
  double TourTotal = 0.0, BoundTotal = 0.0;
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    RandomCase C(Seed, /*Sites=*/8);
    TspAligner Aligner;
    TspAligner::Result R = Aligner.alignWithStats(C.Proc, C.Profile, Alpha);
    PenaltyBounds Bounds = computePenaltyBounds(
        C.Proc, C.Profile, Alpha, static_cast<uint64_t>(R.TourCost));
    TourTotal += static_cast<double>(R.TourCost);
    BoundTotal += Bounds.HeldKarp;
    EXPECT_LE(Bounds.HeldKarp, static_cast<double>(R.TourCost) + 1e-6);
  }
  ASSERT_GT(TourTotal, 0.0);
  EXPECT_GT(BoundTotal / TourTotal, 0.95)
      << "HK bound should be within a few percent of the tours in sum";
}

TEST(BoundsTest, ZeroProfileGivesZeroBounds) {
  RandomCase C(99, 3);
  ProcedureProfile Zero = ProcedureProfile::zeroed(C.Proc);
  PenaltyBounds Bounds = computePenaltyBounds(C.Proc, Zero, Alpha, 0);
  EXPECT_DOUBLE_EQ(Bounds.HeldKarp, 0.0);
  EXPECT_EQ(Bounds.Assignment, 0);
}
