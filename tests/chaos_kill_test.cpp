//===- tests/chaos_kill_test.cpp - fork-based kill sweep ------------------===//
//
// The balign-sentinel chaos harness: fork a child, arm one BALIGN_CRASH
// site (programmatically — same machinery), let it `_exit(2)` mid-I/O,
// then assert the survivor-side invariants in the parent:
//
//  - the cache store reopens with at most one load casualty and every
//    entry it does serve is byte-identical to the no-cache truth;
//  - the checkpoint journal resumes exactly-once: a program whose append
//    survived is never re-run, a program whose append was torn is never
//    skipped (its work re-runs, the journal ends with one record);
//  - a server killed mid-response is invisible to a client that retries
//    against its restarted successor.
//
// Each child exiting with CrashExitCode *proves* the armed site sits on
// the real I/O path — a child that exits 0 means the kill never fired
// and fails the sweep.
//
//===--------------------------------------------------------------------===//

#include "robust/CrashInjector.h"

#include "align/Pipeline.h"
#include "cache/Store.h"
#include "ir/TextFormat.h"
#include "profile/Trace.h"
#include "robust/Journal.h"
#include "serve/Client.h"
#include "serve/Oneshot.h"
#include "serve/Server.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace balign;

namespace {

struct IgnoreSigpipe {
  IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }
} IgnoreSigpipeInit;

std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "balign_chaos_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// A small program + profile + no-cache truth (the cache_store_test
/// workload shape, kept tiny: chaos sweeps fork per site).
struct Workload {
  Program Prog{"chaos"};
  ProgramProfile Train;
  AlignmentOptions Options;
  ProgramAlignment Truth;
};

Workload makeWorkload(uint64_t Seed, size_t NumProcs = 2) {
  Workload W;
  for (size_t P = 0; P != NumProcs; ++P) {
    Rng R(Seed + P);
    GenParams Params;
    Params.TargetBranchSites = 4 + P % 3;
    W.Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
  }
  for (size_t P = 0; P != NumProcs; ++P) {
    const Procedure &Proc = W.Prog.proc(P);
    Rng TraceRng(Seed * 31 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 300;
    W.Train.Procs.push_back(collectProfile(
        Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                            TraceOptions)));
  }
  W.Truth = alignProgram(W.Prog, W.Train, W.Options);
  return W;
}

void storeAll(AlignmentCache &Cache, const Workload &W) {
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P)
    Cache.store(W.Prog.proc(P), W.Train.Procs[P], W.Options, P,
                W.Truth.Procs[P]);
}

/// Forks, runs \p Child in the child (which must end in _exit), waits,
/// and returns the child's exit status (-1 for abnormal death).
template <typename Fn> int runKilledChild(Fn Child) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    Child();
    ::_exit(0); // The armed crash never fired.
  }
  int Status = 0;
  if (Pid < 0 || ::waitpid(Pid, &Status, 0) != Pid)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Appends one fsync'd line to \p Path — the durable "work happened"
/// ack the exactly-once assertions read back after a kill.
void appendDurableLine(const std::string &Path, const std::string &Line) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    ::_exit(5);
  std::string Bytes = Line + "\n";
  if (::write(Fd, Bytes.data(), Bytes.size()) !=
          static_cast<ssize_t>(Bytes.size()) ||
      ::fsync(Fd) != 0)
    ::_exit(5);
  ::close(Fd);
}

size_t countLines(const std::string &Path) {
  std::ifstream In(Path);
  size_t N = 0;
  std::string Line;
  while (std::getline(In, Line))
    ++N;
  return N;
}

} // namespace

TEST(ChaosKillTest, CacheStoreSurvivesKillsAtEveryCrashSite) {
  // One baseline workload (flushed durably up front) and one update
  // workload the child is killed while persisting. Whatever the kill
  // tears, the baseline entries must come back byte-identical and the
  // reopen must count at most one load casualty.
  Workload Baseline = makeWorkload(100, 2);
  Workload Update = makeWorkload(200, 2);

  const CrashSite Sweep[] = {CrashSite::CacheTmpWrite,
                             CrashSite::CachePreRename,
                             CrashSite::CachePostRename,
                             CrashSite::PoolTask};
  for (CrashSite Site : Sweep) {
    std::string DirName = crashSiteName(Site);
    std::replace(DirName.begin(), DirName.end(), '.', '_');
    std::string Dir = freshDir(DirName.c_str());
    {
      AlignmentCache Seed(Dir);
      storeAll(Seed, Baseline);
      std::string Error;
      ASSERT_TRUE(Seed.flush(&Error)) << Error;
    }

    int Status = runKilledChild([&] {
      AlignmentCache Cache(Dir);
      if (Site == CrashSite::PoolTask) {
        // Die inside pipeline task execution: no flush ever runs for
        // the update's results.
        AlignmentOptions Options = Update.Options;
        Options.CacheImpl = &Cache;
        CrashInjector::instance().arm(Site);
        alignProgram(Update.Prog, Update.Train, Options);
      } else {
        storeAll(Cache, Update);
        CrashInjector::instance().arm(Site);
        std::string Error;
        Cache.flush(&Error);
      }
    });
    ASSERT_EQ(CrashExitCode, Status)
        << crashSiteName(Site) << " never fired (or died differently)";

    // Survivor invariants. The kill may have torn the tmp file or left
    // the rename half-acknowledged; none of that may cost more than one
    // load casualty, and nothing it serves may be wrong bytes.
    AlignmentCache After(Dir);
    EXPECT_LE(After.stats().LoadFailures, 1u) << crashSiteName(Site);
    for (size_t P = 0; P != Baseline.Prog.numProcedures(); ++P) {
      ProcedureAlignment Out;
      ASSERT_TRUE(After.lookup(Baseline.Prog.proc(P),
                               Baseline.Train.Procs[P], Baseline.Options,
                               P, Out))
          << crashSiteName(Site) << " lost baseline proc " << P;
      EXPECT_EQ(Baseline.Truth.Procs[P].TspLayout.Order,
                Out.TspLayout.Order)
          << crashSiteName(Site);
      EXPECT_EQ(Baseline.Truth.Procs[P].TspPenalty, Out.TspPenalty)
          << crashSiteName(Site);
    }

    // The survivor can persist again — the torn state did not wedge the
    // store's write path.
    std::string Error;
    EXPECT_TRUE(After.flush(&Error)) << crashSiteName(Site) << ": "
                                     << Error;
  }
}

TEST(ChaosKillTest, CheckpointResumeIsExactlyOnceUnderAppendKills) {
  std::string Dir = freshDir("journal");
  std::string JournalPath = Dir + "/checkpoint.journal";
  const std::vector<std::string> Programs{"p0", "p1", "p2", "p3"};

  // Each child plays one batch-driver life: open the journal, resume
  // past recorded programs, and for each remaining one do the work
  // (a durable ack line) then journal it — with the *second* append of
  // its life armed to die mid-record. Deterministically, each life
  // completes one program and tears the next one's record.
  int Lives = 0;
  for (; Lives != 10; ++Lives) {
    int Status = runKilledChild([&] {
      AppendJournal Journal;
      if (!Journal.open(JournalPath))
        ::_exit(3);
      std::set<std::string> Done(Journal.records().begin(),
                                 Journal.records().end());
      CrashInjector::instance().arm(CrashSite::CheckpointAppend,
                                    /*Nth=*/2);
      for (const std::string &Prog : Programs) {
        if (Done.count(Prog))
          continue; // Never re-run completed work.
        appendDurableLine(Dir + "/" + Prog + ".runs", "ran");
        if (!Journal.append(Prog))
          ::_exit(4);
      }
    });
    if (Status == 0)
      break; // A full pass with no append left to kill: batch done.
    ASSERT_EQ(CrashExitCode, Status) << "life " << Lives;

    // The invariant every intermediate state must satisfy: a journaled
    // program always has its work ack (the journal never gets ahead of
    // the work), torn tails only ever cost re-execution, never skips.
    AppendJournal Check;
    std::string Error;
    ASSERT_TRUE(Check.open(JournalPath, &Error)) << Error;
    for (const std::string &Rec : Check.records())
      EXPECT_GE(countLines(Dir + "/" + Rec + ".runs"), 1u) << Rec;
  }

  // Lives 0..2 each journal one program and tear the next one's record;
  // life 3 journals p3 and exits clean — three kills exactly.
  EXPECT_EQ(3, Lives);

  AppendJournal Final;
  std::string Error;
  ASSERT_TRUE(Final.open(JournalPath, &Error)) << Error;
  EXPECT_EQ(Programs, Final.records()); // Each exactly once, in order.

  // Exactly-once resume, quantified: a program whose append survived is
  // never re-run (p0 ran once); one whose record was torn re-ran exactly
  // once more (never skipped, never thrashed).
  EXPECT_EQ(1u, countLines(Dir + "/p0.runs"));
  EXPECT_EQ(2u, countLines(Dir + "/p1.runs"));
  EXPECT_EQ(2u, countLines(Dir + "/p2.runs"));
  EXPECT_EQ(2u, countLines(Dir + "/p3.runs"));
}

TEST(ChaosKillTest, ServerKilledMidResponseIsInvisibleThroughRetry) {
  std::string Sock = ::testing::TempDir() + "balign_chaos_serve.sock";
  ::unlink(Sock.c_str());

  // The byte-identity oracle for the request both server generations
  // will answer.
  const char Cfg[] = R"(program chaos
proc main {
  entry: size 3 jump -> loop
  loop:  size 2 cond -> body exit
  body:  size 4 jump -> loop
  exit:  size 1 ret
}
)";
  AlignRequest Request;
  Request.CfgText = Cfg;
  Request.Seed = 11;
  Request.Budget = 700;
  std::string ParseError;
  std::optional<Program> Prog = parseProgram(Cfg, &ParseError);
  ASSERT_TRUE(Prog.has_value()) << ParseError;
  ProgramProfile Counts = synthesizeProfile(*Prog, 11, 700);
  AlignmentOptions Options;
  Options.Solver.Seed = 11;
  ProgramAlignment Result = alignProgram(*Prog, Counts, Options);
  std::string Expected = renderAlignmentReport(*Prog, Counts, Result,
                                               /*ComputeBounds=*/false,
                                               /*EmitDot=*/false);

  auto serveOnce = [&](bool Armed) {
    if (Armed)
      CrashInjector::instance().arm(CrashSite::ServeResponse);
    AlignmentOptions Base;
    ServeConfig Config;
    Config.Threads = 1;
    AlignServer Server(Base, Config);
    Server.serveUnixSocket(Sock);
  };

  RetryPolicy Patient;
  Patient.MaxAttempts = 400;
  Patient.InitialBackoffMs = 5;
  Patient.MaxBackoffMs = 5;

  // Generation one dies between computing the response and writing it —
  // the worst spot: the client has no answer yet the work happened.
  pid_t ServerA = ::fork();
  if (ServerA == 0) {
    serveOnce(/*Armed=*/true);
    ::_exit(0);
  }
  ASSERT_GT(ServerA, 0);

  ServeClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connectUnixRetry(Sock, Patient, &Error)) << Error;
  std::string Report;
  EXPECT_FALSE(Client.align(Request, Report, &Error));
  int Status = 0;
  ASSERT_EQ(ServerA, ::waitpid(ServerA, &Status, 0));
  ASSERT_TRUE(WIFEXITED(Status));
  ASSERT_EQ(CrashExitCode, WEXITSTATUS(Status))
      << "serve.response never fired";

  // Generation two is healthy. The same client object — still holding
  // its dead connection — retries: reconnect, byte-identical resend,
  // correct answer. The restart is invisible to the caller.
  pid_t ServerB = ::fork();
  if (ServerB == 0) {
    serveOnce(/*Armed=*/false);
    ::_exit(0);
  }
  ASSERT_GT(ServerB, 0);

  ASSERT_TRUE(Client.alignWithRetry(Sock, Request, Report, Patient,
                                    &Error))
      << Error;
  EXPECT_EQ(Expected, Report);

  Frame Response;
  ASSERT_TRUE(Client.call(makeFrame(FrameType::Shutdown), Response,
                          &Error))
      << Error;
  EXPECT_EQ(FrameType::ShutdownOk, Response.Type);
  ASSERT_EQ(ServerB, ::waitpid(ServerB, &Status, 0));
  EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);
}
