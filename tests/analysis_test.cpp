//===- tests/analysis_test.cpp - balign-verify framework tests ----------------===//
//
// One deliberately corrupted input per analysis, each caught with the
// expected stable check ID, plus clean-input runs proving the verifier
// stays silent on healthy pipelines.
//
//===--------------------------------------------------------------------===//

#include "analysis/PipelineVerifier.h"
#include "analysis/Verifier.h"
#include "ir/CFGBuilder.h"
#include "profile/Trace.h"
#include "workloads/Generator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace balign;

namespace {

/// entry =cond=> {left, right} => join => ret.
Procedure diamond() {
  CFGBuilder B("diamond");
  BlockId Entry = B.cond(4, "entry");
  BlockId Left = B.jump(2, "left");
  BlockId Right = B.jump(6, "right");
  BlockId Join = B.ret(3, "join");
  B.branches(Entry, Left, Right).edge(Left, Join).edge(Right, Join);
  return B.take();
}

ProcedureProfile profileFor(const Procedure &Proc, uint64_t Budget,
                            uint64_t Seed) {
  Rng TraceRng(Seed);
  TraceGenOptions Options;
  Options.BranchBudget = Budget;
  return collectProfile(
      Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                          Options));
}

Procedure generated(uint64_t Seed, unsigned Sites = 6) {
  Rng R(Seed);
  GenParams Params;
  Params.TargetBranchSites = Sites;
  return generateProcedure("gen" + std::to_string(Seed), Params, R).Proc;
}

} // namespace

//===----------------------------------------------------------------------===//
// Diagnostics substrate
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, RenderCarriesStableCheckId) {
  Diagnostic D{Severity::Error, CheckId::CfgUnreachable, "cfg-verify",
               DiagLocation::block("f", 3), "dead code"};
  std::string Text = D.render();
  EXPECT_NE(Text.find("error"), std::string::npos);
  EXPECT_NE(Text.find("cfg.unreachable-block"), std::string::npos);
  EXPECT_NE(Text.find("'f'"), std::string::npos);
  EXPECT_NE(Text.find("dead code"), std::string::npos);
}

TEST(DiagnosticsTest, EngineCountsBySeverityAndId) {
  DiagnosticEngine Diags;
  Diags.report(Severity::Error, CheckId::TourInvalid, "tour-bounds",
               DiagLocation::procedure("f"), "bad");
  Diags.report(Severity::Warning, CheckId::TourPinPaid, "tour-bounds",
               DiagLocation::procedure("f"), "odd");
  Diags.report(Severity::Error, CheckId::TourInvalid, "tour-bounds",
               DiagLocation::procedure("g"), "bad again");
  EXPECT_EQ(Diags.errorCount(), 2u);
  EXPECT_EQ(Diags.warningCount(), 1u);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.count(CheckId::TourInvalid), 2u);
  EXPECT_TRUE(Diags.has(CheckId::TourPinPaid));
  EXPECT_FALSE(Diags.has(CheckId::TourCostMismatch));
  EXPECT_EQ(Diags.summary(), "2 errors, 1 warning");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 0u);
}

//===----------------------------------------------------------------------===//
// Pass 1: cfg-verify
//===----------------------------------------------------------------------===//

TEST(CfgCheckTest, CleanProcedure) {
  DiagnosticEngine Diags;
  EXPECT_EQ(checkCfg(diamond(), Diags), 0u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(CfgCheckTest, CatchesUnreachableBlock) {
  Procedure Proc("orphaned");
  BlockId Entry = Proc.addBlock({4, TerminatorKind::Unconditional, "entry"});
  BlockId Exit = Proc.addBlock({2, TerminatorKind::Return, "exit"});
  Proc.addBlock({3, TerminatorKind::Return, "orphan"});
  Proc.addEdge(Entry, Exit);
  DiagnosticEngine Diags;
  EXPECT_GT(checkCfg(Proc, Diags), 0u);
  EXPECT_TRUE(Diags.has(CheckId::CfgUnreachable));
}

TEST(CfgCheckTest, ReportsAllViolationsNotJustTheFirst) {
  // Procedure::verify stops at its first complaint; the verifier pass
  // must keep going and catalog every independent defect.
  Procedure Proc("multi_bad");
  BlockId Entry = Proc.addBlock({4, TerminatorKind::Conditional, "entry"});
  BlockId A = Proc.addBlock({2, TerminatorKind::Unconditional, "a"});
  BlockId B = Proc.addBlock({1, TerminatorKind::Return, "b"});
  Proc.addEdge(Entry, A);
  Proc.addEdge(Entry, A); // Conditional with duplicate successors.
  Proc.addEdge(A, B);
  Proc.block(B).InstrCount = 0; // Corrupt after the fact; addBlock asserts.
  DiagnosticEngine Diags;
  checkCfg(Proc, Diags);
  EXPECT_TRUE(Diags.has(CheckId::CfgDuplicateEdge));
  EXPECT_TRUE(Diags.has(CheckId::CfgEmptyBlock));
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(CfgCheckTest, CatchesArityViolations) {
  Procedure Proc("arity");
  BlockId Entry = Proc.addBlock({4, TerminatorKind::Conditional, "entry"});
  BlockId Exit = Proc.addBlock({2, TerminatorKind::Return, "exit"});
  Proc.addEdge(Entry, Exit); // Conditional with only one successor.
  Proc.addEdge(Exit, Entry); // Return with a successor.
  DiagnosticEngine Diags;
  checkCfg(Proc, Diags);
  EXPECT_TRUE(Diags.has(CheckId::CfgCondArity));
  EXPECT_TRUE(Diags.has(CheckId::CfgRetHasSucc));
}

//===----------------------------------------------------------------------===//
// Pass 2: profile-flow
//===----------------------------------------------------------------------===//

TEST(ProfileCheckTest, CollectedProfileConserves) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 500, 7);
  DiagnosticEngine Diags;
  EXPECT_EQ(checkProfileFlow(Proc, Profile, Diags, VerifyOptions()), 0u);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(Diags.has(CheckId::ProfileFlowTruncated));
}

TEST(ProfileCheckTest, CatchesNonConservedFlow) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 500, 7);
  Profile.EdgeCounts[0][0] += 5; // Edge flow no longer matches counts.
  DiagnosticEngine Diags;
  EXPECT_GT(checkProfileFlow(Proc, Profile, Diags, VerifyOptions()), 0u);
  EXPECT_TRUE(Diags.has(CheckId::ProfileFlowImbalance));
}

TEST(ProfileCheckTest, CatchesEdgeAbsentFromCfg) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 500, 7);
  Profile.EdgeCounts[1].push_back(3); // Count for an edge the CFG lacks.
  DiagnosticEngine Diags;
  checkProfileFlow(Proc, Profile, Diags, VerifyOptions());
  EXPECT_TRUE(Diags.has(CheckId::ProfileUnknownEdge));
}

TEST(ProfileCheckTest, WarnsOnOverflowSuspiciousCounts) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.BlockCounts[0] = ~static_cast<uint64_t>(0) / 2;
  DiagnosticEngine Diags;
  checkProfileFlow(Proc, Profile, Diags, VerifyOptions());
  EXPECT_TRUE(Diags.has(CheckId::ProfileCountOverflow));
  EXPECT_GE(Diags.warningCount(), 1u);
}

TEST(ProfileCheckTest, ProgramOverloadChecksArity) {
  Program Prog("p");
  Prog.addProcedure(diamond());
  ProgramProfile Train; // Empty: wrong arity.
  DiagnosticEngine Diags;
  EXPECT_GT(checkProfileFlow(Prog, Train, Diags, VerifyOptions()), 0u);
  EXPECT_TRUE(Diags.has(CheckId::ProfileShapeMismatch));
}

//===----------------------------------------------------------------------===//
// Pass 3: layout-check
//===----------------------------------------------------------------------===//

TEST(LayoutCheckTest, OriginalLayoutIsLegal) {
  Procedure Proc = generated(3);
  ProcedureProfile Profile = profileFor(Proc, 400, 11);
  DiagnosticEngine Diags;
  EXPECT_EQ(checkLayout(Proc, Layout::original(Proc), Profile,
                        MachineModel::alpha21164(), Diags),
            0u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LayoutCheckTest, CatchesNonPermutation) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 200, 3);
  Layout Bad;
  Bad.Order = {0, 1, 1, 3}; // Block 1 twice, block 2 missing.
  DiagnosticEngine Diags;
  EXPECT_GT(checkLayout(Proc, Bad, Profile, MachineModel::alpha21164(),
                        Diags),
            0u);
  EXPECT_TRUE(Diags.has(CheckId::LayoutNotPermutation));
}

TEST(LayoutCheckTest, CatchesEntryNotFirst) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 200, 3);
  Layout Bad;
  Bad.Order = {1, 0, 2, 3};
  DiagnosticEngine Diags;
  checkLayout(Proc, Bad, Profile, MachineModel::alpha21164(), Diags);
  EXPECT_TRUE(Diags.has(CheckId::LayoutEntryNotFirst));
}

//===----------------------------------------------------------------------===//
// Pass 4: matrix-audit
//===----------------------------------------------------------------------===//

TEST(MatrixCheckTest, FreshInstanceAuditsClean) {
  Procedure Proc = generated(5);
  ProcedureProfile Profile = profileFor(Proc, 600, 13);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Model);
  DiagnosticEngine Diags;
  VerifyOptions Full; // Level::Full: includes exactness + transform audit.
  EXPECT_EQ(checkCostMatrix(Proc, Profile, Model, Atsp, Diags, Full), 0u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(MatrixCheckTest, CatchesLeakedBigM) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 300, 17);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Model);
  Atsp.Tsp.setCost(1, 2, Atsp.EntryPin + 5); // Pin leaks into a real cell.
  DiagnosticEngine Diags;
  checkCostMatrix(Proc, Profile, Model, Atsp, Diags, VerifyOptions());
  EXPECT_TRUE(Diags.has(CheckId::MatrixBigMLeak));
  EXPECT_TRUE(Diags.has(CheckId::MatrixCostMismatch)); // Full level audit.
}

TEST(MatrixCheckTest, CatchesBrokenDummyRow) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 300, 17);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Model);
  Atsp.Tsp.setCost(Atsp.DummyCity, Proc.entry(), 9); // Entry no longer free.
  DiagnosticEngine Diags;
  checkCostMatrix(Proc, Profile, Model, Atsp, Diags, VerifyOptions());
  EXPECT_TRUE(Diags.has(CheckId::MatrixDummyRowBroken));
}

TEST(MatrixCheckTest, QuickLevelSkipsExactnessAudit) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 300, 17);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Model);
  // A cell that is wrong but still within [0, EntryPin): only the Full
  // exactness audit can see it.
  Atsp.Tsp.setCost(1, 2, Atsp.Tsp.cost(1, 2) + 1);
  DiagnosticEngine Diags;
  VerifyOptions Quick;
  Quick.Level = VerifyLevel::Quick;
  checkCostMatrix(Proc, Profile, Model, Atsp, Diags, Quick);
  EXPECT_FALSE(Diags.has(CheckId::MatrixCostMismatch));
  DiagnosticEngine FullDiags;
  checkCostMatrix(Proc, Profile, Model, Atsp, FullDiags, VerifyOptions());
  EXPECT_TRUE(FullDiags.has(CheckId::MatrixCostMismatch));
}

//===----------------------------------------------------------------------===//
// Pass 5: tour-bounds
//===----------------------------------------------------------------------===//

TEST(TourCheckTest, SolvedTourChecksClean) {
  Procedure Proc = generated(9);
  ProcedureProfile Profile = profileFor(Proc, 500, 19);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Model);
  DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, IteratedOptOptions());
  DiagnosticEngine Diags;
  EXPECT_EQ(checkTour(Proc, Profile, Model, Atsp, Solution.Tour,
                      Solution.Cost, Diags),
            0u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(TourCheckTest, CatchesInvalidTour) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 300, 23);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Model);
  std::vector<City> Bad = {0, 1, 1, 3, 4}; // City 1 twice, 2 missing.
  DiagnosticEngine Diags;
  EXPECT_GT(checkTour(Proc, Profile, Model, Atsp, Bad, 0, Diags), 0u);
  EXPECT_TRUE(Diags.has(CheckId::TourInvalid));
}

TEST(TourCheckTest, CatchesMisreportedCost) {
  Procedure Proc = diamond();
  ProcedureProfile Profile = profileFor(Proc, 300, 23);
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp = buildAlignmentTsp(Proc, Profile, Model);
  DtspSolution Solution = solveDirectedTsp(Atsp.Tsp, IteratedOptOptions());
  DiagnosticEngine Diags;
  checkTour(Proc, Profile, Model, Atsp, Solution.Tour, Solution.Cost + 1,
            Diags);
  EXPECT_TRUE(Diags.has(CheckId::TourCostMismatch));
}

TEST(TourCheckTest, CatchesBoundsExceedingBestTour) {
  Procedure Proc = diamond();
  PenaltyBounds Bad;
  Bad.HeldKarp = 250.0;
  Bad.Assignment = 300;
  DiagnosticEngine Diags;
  EXPECT_GT(checkBounds(Proc, Bad, /*TspPenalty=*/100, Diags), 0u);
  EXPECT_TRUE(Diags.has(CheckId::BoundHkExceedsTour));
  EXPECT_TRUE(Diags.has(CheckId::BoundApExceedsTour));
}

//===----------------------------------------------------------------------===//
// Pass 6: determinism
//===----------------------------------------------------------------------===//

namespace {

struct SolvedProc {
  Procedure Proc;
  ProcedureProfile Profile;
  MachineModel Model = MachineModel::alpha21164();
  AlignmentTsp Atsp;
  IteratedOptOptions SolverOptions;
  DtspSolution Solution;
  Layout TspLayout;
};

SolvedProc solveOne(uint64_t Seed) {
  SolvedProc S{generated(Seed), {}, MachineModel::alpha21164(), {}, {}, {},
               {}};
  S.Profile = profileFor(S.Proc, 500, Seed * 31 + 1);
  S.Atsp = buildAlignmentTsp(S.Proc, S.Profile, S.Model);
  S.Solution = solveDirectedTsp(S.Atsp.Tsp, S.SolverOptions);
  S.TspLayout = layoutFromTour(S.Proc, S.Atsp, S.Solution.Tour);
  return S;
}

} // namespace

TEST(DeterminismCheckTest, HonestReplayIsClean) {
  SolvedProc S = solveOne(41);
  DiagnosticEngine Diags;
  EXPECT_EQ(checkDeterminism(S.Proc, S.Profile, S.Model, S.Atsp,
                             S.SolverOptions, S.Solution.Tour,
                             S.Solution.Cost, S.TspLayout, Diags),
            0u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(DeterminismCheckTest, CatchesMatrixDivergence) {
  SolvedProc S = solveOne(43);
  AlignmentTsp Tampered = S.Atsp;
  Tampered.Tsp.setCost(0, 1, Tampered.Tsp.cost(0, 1) + 3);
  DiagnosticEngine Diags;
  checkDeterminism(S.Proc, S.Profile, S.Model, Tampered, S.SolverOptions,
                   S.Solution.Tour, S.Solution.Cost, S.TspLayout, Diags);
  EXPECT_TRUE(Diags.has(CheckId::DeterminismMatrixDiverged));
}

TEST(DeterminismCheckTest, CatchesTourDivergence) {
  SolvedProc S = solveOne(47);
  DiagnosticEngine Diags;
  checkDeterminism(S.Proc, S.Profile, S.Model, S.Atsp, S.SolverOptions,
                   S.Solution.Tour, S.Solution.Cost + 7, S.TspLayout, Diags);
  EXPECT_TRUE(Diags.has(CheckId::DeterminismTourDiverged));
}

TEST(DeterminismCheckTest, CatchesLayoutDivergence) {
  SolvedProc S = solveOne(53);
  ASSERT_GE(S.TspLayout.Order.size(), 3u);
  Layout Tampered = S.TspLayout;
  std::swap(Tampered.Order[1], Tampered.Order[2]);
  DiagnosticEngine Diags;
  checkDeterminism(S.Proc, S.Profile, S.Model, S.Atsp, S.SolverOptions,
                   S.Solution.Tour, S.Solution.Cost, Tampered, Diags);
  EXPECT_TRUE(Diags.has(CheckId::DeterminismLayoutDiverged));
}

//===----------------------------------------------------------------------===//
// PipelineVerifier: verify-each over the whole driver
//===----------------------------------------------------------------------===//

TEST(PipelineVerifierTest, FullPipelineRunsClean) {
  Program Prog("verified");
  ProgramProfile Train;
  for (uint64_t Seed : {61, 67}) {
    Prog.addProcedure(generated(Seed));
    Train.Procs.push_back(
        profileFor(Prog.proc(Prog.numProcedures() - 1), 600, Seed + 1));
  }
  AlignmentOptions Options;
  DiagnosticEngine Diags;
  ProgramAlignment Result =
      alignProgramVerified(Prog, Train, Options, Diags, VerifyOptions());
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
  EXPECT_EQ(Result.Procs.size(), 2u);
}

TEST(PipelineVerifierTest, InputErrorsSurfaceBeforeAlignment) {
  Program Prog("sick");
  Prog.addProcedure(diamond());
  ProgramProfile Train;
  Train.Procs.push_back(profileFor(Prog.proc(0), 300, 71));
  Train.Procs.back().EdgeCounts[0][1] += 9; // Break conservation.
  AlignmentOptions Options;
  DiagnosticEngine Diags;
  alignProgramVerified(Prog, Train, Options, Diags, VerifyOptions());
  EXPECT_TRUE(Diags.has(CheckId::ProfileFlowImbalance));
}

TEST(PipelineVerifierTest, WholeProgramColdKeepsEveryOriginalLayout) {
  // Pipeline-level coverage of the unprofiled skip path: with every
  // procedure cold the whole program must come back in original order,
  // with zero penalties, and the verifier must agree nothing is wrong.
  Program Prog("cold");
  ProgramProfile Train;
  for (uint64_t Seed : {73, 79, 83}) {
    Prog.addProcedure(generated(Seed));
    Train.Procs.push_back(
        ProcedureProfile::zeroed(Prog.proc(Prog.numProcedures() - 1)));
  }
  AlignmentOptions Options;
  DiagnosticEngine Diags;
  ProgramAlignment Result =
      alignProgramVerified(Prog, Train, Options, Diags, VerifyOptions());
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
  for (size_t P = 0; P != Prog.numProcedures(); ++P) {
    EXPECT_EQ(Result.Procs[P].TspLayout.Order,
              Layout::original(Prog.proc(P)).Order);
    EXPECT_EQ(Result.Procs[P].GreedyLayout.Order,
              Layout::original(Prog.proc(P)).Order);
    EXPECT_EQ(Result.Procs[P].TspPenalty, 0u);
    EXPECT_EQ(Result.Procs[P].GreedyPenalty, 0u);
  }
}

TEST(PipelineVerifierTest, VerifyAlignmentChecksFinishedResult) {
  Program Prog("after");
  Prog.addProcedure(generated(89));
  ProgramProfile Train;
  Train.Procs.push_back(profileFor(Prog.proc(0), 400, 97));
  AlignmentOptions Options;
  ProgramAlignment Result = alignProgram(Prog, Train, Options);

  DiagnosticEngine Diags;
  PipelineVerifier Verifier(Diags);
  EXPECT_EQ(Verifier.verifyAlignment(Prog, Train, Options.Model, Result),
            0u);

  // Tamper with a produced layout; the post-hoc check must notice.
  std::swap(Result.Procs[0].TspLayout.Order[0],
            Result.Procs[0].TspLayout.Order[1]);
  DiagnosticEngine Diags2;
  PipelineVerifier Verifier2(Diags2);
  EXPECT_GT(Verifier2.verifyAlignment(Prog, Train, Options.Model, Result),
            0u);
  EXPECT_TRUE(Diags2.has(CheckId::LayoutEntryNotFirst));
}

TEST(PipelineVerifierTest, BenchmarkWorkloadsVerifyClean) {
  // The workload generators already self-check CFG + profile flow on
  // every build; this drives one bundled benchmark (at a reduced trace
  // budget, for speed) through the full verified pipeline end to end.
  WorkloadSpec Spec;
  for (const WorkloadSpec &S : benchmarkSuite())
    if (S.Benchmark == "esp")
      Spec = S;
  ASSERT_EQ(Spec.Benchmark, "esp");
  for (DataSetSpec &Ds : Spec.DataSets)
    Ds.BranchBudget = std::min<uint64_t>(Ds.BranchBudget, 3000);
  WorkloadInstance Instance = buildWorkload(Spec);
  AlignmentOptions Options;
  Options.ComputeBounds = false;
  DiagnosticEngine Diags;
  alignProgramVerified(Instance.Prog, Instance.DataSets[0].Profile, Options,
                       Diags, VerifyOptions());
  EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
}

//===----------------------------------------------------------------------===//
// Fatal pipeline diagnostics (release-proof assert replacement)
//===----------------------------------------------------------------------===//

using PipelineFatalDeathTest = ::testing::Test;

TEST(PipelineFatalDeathTest, ProfileArityMismatchDiesLoudly) {
  Program Prog("arity");
  Prog.addProcedure(diamond());
  ProgramProfile Empty; // No per-procedure profiles at all.
  AlignmentOptions Options;
  EXPECT_DEATH(alignProgram(Prog, Empty, Options),
               "pipeline\\.profile-arity");
}

TEST(PipelineFatalDeathTest, LayoutArityMismatchDiesLoudly) {
  Program Prog("arity2");
  Prog.addProcedure(diamond());
  ProgramProfile Train;
  Train.Procs.push_back(ProcedureProfile::zeroed(Prog.proc(0)));
  std::vector<Layout> NoLayouts;
  EXPECT_DEATH(evaluateProgramPenalty(Prog, NoLayouts,
                                      MachineModel::alpha21164(), Train,
                                      Train),
               "pipeline\\.layout-arity");
}

TEST(PipelineFatalDeathTest, MisshapenProcedureProfileDiesLoudly) {
  Program Prog("shape");
  Prog.addProcedure(diamond());
  ProgramProfile Train;
  Train.Procs.push_back(ProcedureProfile()); // Zero blocks for 4-block proc.
  AlignmentOptions Options;
  EXPECT_DEATH(alignProgram(Prog, Train, Options),
               "pipeline\\.profile-shape");
}
