//===- tests/property_test.cpp - Cross-cutting property tests -----------------===//

#include "align/Aligners.h"
#include "align/Penalty.h"
#include "interproc/ProcOrder.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "sim/ICache.h"
#include "tsp/Transform.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace balign;

// --- Workload data-set coherence -------------------------------------------

TEST(WorkloadPropertyTest, StronglyBiasedBranchesAgreeAcrossDataSets) {
  // DESIGN.md: only weakly-biased branches may flip direction between
  // inputs. Verify on the built suite: wherever both data sets give a
  // conditional a bias >= 0.88, they favor the same successor.
  WorkloadInstance W = buildWorkloadByName("esp");
  size_t Checked = 0;
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
    const Procedure &Proc = W.Prog.proc(P);
    for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
      if (Proc.block(B).Kind != TerminatorKind::Conditional)
        continue;
      const std::vector<double> &PA = W.DataSets[0].Behaviors[P].Probs[B];
      const std::vector<double> &PB = W.DataSets[1].Behaviors[P].Probs[B];
      double MaxA = std::max(PA[0], PA[1]);
      double MaxB = std::max(PB[0], PB[1]);
      if (MaxA < 0.88 || MaxB < 0.88)
        continue;
      ++Checked;
      EXPECT_EQ(PA[0] > PA[1], PB[0] > PB[1])
          << "proc " << P << " block " << B
          << ": strongly biased branch flipped between data sets";
    }
  }
  EXPECT_GT(Checked, 100u) << "the property must actually be exercised";
}

TEST(WorkloadPropertyTest, LoopHeadersStayLoopBiasedInBothDataSets) {
  WorkloadInstance W = buildWorkloadByName("su2");
  for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
    const GeneratedProcedure &Gen = W.Generated[P];
    for (BlockId B = 0; B != Gen.Proc.numBlocks(); ++B) {
      if (Gen.LoopStayIndex[B] < 0)
        continue;
      for (const WorkloadDataSet &Ds : W.DataSets) {
        double Stay = Ds.Behaviors[P]
                          .Probs[B][static_cast<size_t>(Gen.LoopStayIndex[B])];
        EXPECT_GT(Stay, 0.5) << "a loop must iterate more than it exits";
      }
    }
  }
}

// --- Penalty model under other machine models -------------------------------

class DeepPipelinePenalty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeepPipelinePenalty, ScalesWithModelParameters) {
  // The same layout decisions, re-costed under the deep pipeline, must
  // equal the hand-computed values (the model is pure arithmetic).
  uint64_t HotCount = 10 * GetParam();
  uint64_t ColdCount = 3 * GetParam();
  CFGBuilder B("m");
  BlockId C = B.cond(4);
  BlockId T = B.ret(1);
  BlockId E = B.ret(1);
  B.branches(C, T, E);
  Procedure Proc = B.take();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.EdgeCounts[0] = {HotCount, ColdCount};
  Profile.BlockCounts = {HotCount + ColdCount, HotCount, ColdCount};

  MachineModel Deep = MachineModel::deepPipeline();
  EXPECT_EQ(blockLayoutPenalty(Proc, Deep, Profile, Profile, C, T),
            ColdCount * Deep.CondMispredict);
  EXPECT_EQ(blockLayoutPenalty(Proc, Deep, Profile, Profile, C, E),
            HotCount * Deep.CondTakenCorrect +
                ColdCount * Deep.CondMispredict);
  // Fixup case: min of the two orientations.
  uint64_t TakenToHot = HotCount * Deep.CondTakenCorrect +
                        ColdCount * (Deep.CondMispredict + Deep.UncondBranch);
  uint64_t FallToHot = HotCount * (Deep.CondFallThrough + Deep.UncondBranch) +
                       ColdCount * Deep.CondMispredict;
  EXPECT_EQ(
      blockLayoutPenalty(Proc, Deep, Profile, Profile, C, InvalidBlock),
      std::min(TakenToHot, FallToHot));
}

INSTANTIATE_TEST_SUITE_P(Scales, DeepPipelinePenalty,
                         ::testing::Values(1, 7, 100, 12345));

// --- Cache geometry edge cases ----------------------------------------------

TEST(ICachePropertyTest, FullCoverageSweep) {
  // Touching an entire cache-sized region misses exactly once per line,
  // for several geometries.
  for (uint64_t Size : {256u, 1024u, 8192u}) {
    for (uint64_t Line : {16u, 32u, 64u}) {
      ICacheConfig Config;
      Config.SizeBytes = Size;
      Config.LineBytes = Line;
      ICache Cache(Config);
      EXPECT_EQ(Cache.accessRange(0, Size), Size / Line);
      EXPECT_EQ(Cache.accessRange(0, Size), 0u) << "everything warm";
      // A second cache-sized region aliases every set.
      EXPECT_EQ(Cache.accessRange(Size, Size), Size / Line);
      EXPECT_EQ(Cache.accessRange(0, Size), Size / Line) << "fully evicted";
    }
  }
}

// --- Symmetric transform with negative and skewed costs ----------------------

TEST(TransformPropertyTest, NegativeCostsSurviveRoundTrip) {
  DirectedTsp D(5);
  int64_t V = -40;
  for (City I = 0; I != 5; ++I)
    for (City J = 0; J != 5; ++J)
      if (I != J)
        D.setCost(I, J, V += 17);
  SymmetricTransform T = transformToSymmetric(D);
  std::vector<City> Tour = {0, 3, 1, 4, 2};
  EXPECT_EQ(T.toDirectedCost(T.Sym.tourCost(T.toSymmetricTour(Tour))),
            D.tourCost(Tour));
  EXPECT_GT(T.LockBonus, 0);
}

// --- Calder-Grunwald exhaustive chain order ----------------------------------

TEST(CalderGrunwaldPropertyTest, FindsBestChainPermutationOnCraftedCase) {
  // Three independent hot diamonds; the exhaustive chain-order search
  // must tie or beat plain concatenation for every seedless input.
  CFGBuilder B("three");
  BlockId Entry = B.jump(2);
  std::vector<BlockId> Conds, Joins;
  for (int I = 0; I != 3; ++I) {
    BlockId C = B.cond(3);
    BlockId T = B.jump(2);
    BlockId E = B.jump(2);
    BlockId J = B.jump(1);
    B.branches(C, T, E);
    B.edge(T, J).edge(E, J);
    Conds.push_back(C);
    Joins.push_back(J);
  }
  BlockId Exit = B.ret(1);
  B.edge(Entry, Conds[0]);
  B.edge(Joins[0], Conds[1]);
  B.edge(Joins[1], Conds[2]);
  B.edge(Joins[2], Exit);
  Procedure Proc = B.take();

  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  uint64_t F = 1000;
  Profile.BlockCounts.assign(Proc.numBlocks(), 0);
  Profile.BlockCounts[Entry] = F;
  for (int I = 0; I != 3; ++I) {
    Profile.EdgeCounts[Conds[I]] = {F * 9 / 10, F / 10};
    Profile.EdgeCounts[Conds[I] + 1] = {F * 9 / 10}; // then arm
    Profile.EdgeCounts[Conds[I] + 2] = {F / 10};     // else arm
    Profile.EdgeCounts[Joins[I]] = {F};
    Profile.BlockCounts[Conds[I]] = F;
    Profile.BlockCounts[Conds[I] + 1] = F * 9 / 10;
    Profile.BlockCounts[Conds[I] + 2] = F / 10;
    Profile.BlockCounts[Joins[I]] = F;
  }
  Profile.EdgeCounts[Entry] = {F};
  Profile.BlockCounts[Exit] = F;

  MachineModel Alpha = MachineModel::alpha21164();
  CalderGrunwaldAligner Cg;
  GreedyAligner Greedy;
  uint64_t CgPenalty = evaluateLayout(
      Proc, Cg.align(Proc, Profile, Alpha), Alpha, Profile, Profile);
  uint64_t GreedyPenalty = evaluateLayout(
      Proc, Greedy.align(Proc, Profile, Alpha), Alpha, Profile, Profile);
  EXPECT_LE(CgPenalty, GreedyPenalty);
}

// --- TSP procedure order cuts at the lightest adjacency ----------------------

TEST(ProcOrderPropertyTest, TspOrderCutsLightestTourEdge) {
  // A ring affinity: 0-1-2-3-4-0 with one weak link (3-4). The tour is
  // the ring; the linearization must break at the weak link, keeping
  // all heavy adjacencies.
  std::vector<std::vector<uint64_t>> Affinity(5,
                                              std::vector<uint64_t>(5, 0));
  auto Set = [&](size_t A, size_t B, uint64_t W) {
    Affinity[A][B] = Affinity[B][A] = W;
  };
  Set(0, 1, 100);
  Set(1, 2, 100);
  Set(2, 3, 100);
  Set(3, 4, 5); // Weak link.
  Set(4, 0, 100);
  ProcOrder Order = tspOrder(Affinity);
  EXPECT_EQ(adjacentAffinity(Order, Affinity), 400u)
      << "all four heavy edges kept; the weak one cut";
}
