//===- tests/exttsp_align_test.cpp - ExtTspAligner contract tests ---------===//
//
// The chain-merging aligner's end-to-end contracts: layouts are valid
// permutations with the entry first, the merge heuristic never scores
// below the greedy chain builder on its own objective, the pipeline's
// PrimaryAligner::ExtTsp path is bit-deterministic across thread counts
// (with the verification hooks watching), warm caches replay it
// bit-identically with zero chain-merge work, and the cache fingerprint
// keys every objective parameter (and nothing solver-related, since the
// chain merger never consults the annealer).
//
//===--------------------------------------------------------------------===//

#include "align/Aligners.h"

#include "align/Pipeline.h"
#include "analysis/PipelineVerifier.h"
#include "cache/Fingerprint.h"
#include "cache/Store.h"
#include "objective/Objective.h"
#include "profile/Trace.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

using namespace balign;

namespace {

struct Workload {
  Program Prog{"exttsp_align"};
  ProgramProfile Train;
};

Workload makeWorkload(uint64_t Seed = 11, size_t NumProcs = 6) {
  Workload W;
  for (size_t P = 0; P != NumProcs; ++P) {
    Rng R(Seed * 257 + P);
    GenParams Params;
    Params.TargetBranchSites = 3 + P % 6;
    W.Prog.addProcedure(
        generateProcedure("p" + std::to_string(P), Params, R).Proc);
  }
  for (size_t P = 0; P != NumProcs; ++P) {
    const Procedure &Proc = W.Prog.proc(P);
    Rng TraceRng(Seed * 131 + P);
    TraceGenOptions TraceOptions;
    TraceOptions.BranchBudget = 400;
    W.Train.Procs.push_back(collectProfile(
        Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                            TraceOptions)));
  }
  return W;
}

void expectProgramEq(const ProgramAlignment &A, const ProgramAlignment &B) {
  ASSERT_EQ(A.Procs.size(), B.Procs.size());
  for (size_t P = 0; P != A.Procs.size(); ++P) {
    EXPECT_EQ(A.Procs[P].TspLayout.Order, B.Procs[P].TspLayout.Order)
        << "proc " << P;
    EXPECT_EQ(A.Procs[P].GreedyLayout.Order, B.Procs[P].GreedyLayout.Order)
        << "proc " << P;
    EXPECT_EQ(A.Procs[P].TspPenalty, B.Procs[P].TspPenalty) << "proc " << P;
    EXPECT_EQ(A.Procs[P].GreedyPenalty, B.Procs[P].GreedyPenalty)
        << "proc " << P;
  }
}

} // namespace

//===--------------------------------------------------------------------===//
// Layout validity
//===--------------------------------------------------------------------===//

TEST(ExtTspAlignTest, LayoutsAreValidEntryFirstPermutations) {
  MachineModel Model = MachineModel::alpha21164();
  ExtTspAligner Aligner;
  for (uint64_t Seed : {3u, 19u, 101u, 977u}) {
    Workload W = makeWorkload(Seed);
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
      const Procedure &Proc = W.Prog.proc(P);
      Layout L = Aligner.align(Proc, W.Train.Procs[P], Model);
      EXPECT_TRUE(L.isValid(Proc)) << "seed " << Seed << " proc " << P;
      ASSERT_FALSE(L.Order.empty());
      EXPECT_EQ(L.Order.front(), 0u) << "entry must stay first";
    }
  }
}

//===--------------------------------------------------------------------===//
// Quality floor: never below greedy on the optimized objective
//===--------------------------------------------------------------------===//

TEST(ExtTspAlignTest, NeverScoresBelowGreedyOnExtTspObjective) {
  MachineModel Model = MachineModel::alpha21164();
  ExtTspObjective Obj(Model);
  ExtTspAligner Chains;
  GreedyAligner Greedy;
  size_t Procs = 0, Wins = 0;
  for (uint64_t Seed : {5u, 23u, 71u, 311u, 1213u}) {
    Workload W = makeWorkload(Seed);
    for (size_t P = 0; P != W.Prog.numProcedures(); ++P) {
      const Procedure &Proc = W.Prog.proc(P);
      const ProcedureProfile &Train = W.Train.Procs[P];
      double ChainScore =
          Obj.scoreLayout(Proc, Train, Chains.align(Proc, Train, Model));
      double GreedyScore =
          Obj.scoreLayout(Proc, Train, Greedy.align(Proc, Train, Model));
      EXPECT_GE(ChainScore, GreedyScore - 1e-9)
          << "seed " << Seed << " proc " << P;
      ++Procs;
      if (ChainScore > GreedyScore + 1e-9)
        ++Wins;
    }
  }
  // Not a tautology: strictly better somewhere, or the merger is dead
  // weight. (The >=80% acceptance bar lives in bench/exttsp_compare.)
  EXPECT_GT(Wins, Procs / 4) << Wins << " strict wins of " << Procs;
}

//===--------------------------------------------------------------------===//
// Determinism matrix: threads x verify hooks
//===--------------------------------------------------------------------===//

TEST(ExtTspAlignTest, PipelineBitIdenticalAcrossThreadCountsUnderVerify) {
  Workload W = makeWorkload(29, 8);
  ProgramAlignment Baseline;
  bool HaveBaseline = false;
  for (unsigned Threads : {1u, 2u, 8u}) {
    AlignmentOptions Options;
    Options.Primary = PrimaryAligner::ExtTsp;
    Options.Threads = Threads;
    Options.ComputeBounds = true;
    DiagnosticEngine Diags;
    ProgramAlignment Result =
        alignProgramVerified(W.Prog, W.Train, Options, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
    if (!HaveBaseline) {
      Baseline = std::move(Result);
      HaveBaseline = true;
    } else {
      expectProgramEq(Baseline, Result);
    }
  }
}

TEST(ExtTspAlignTest, ObjectiveChoiceChangesResultsDeterministically) {
  Workload W = makeWorkload(41, 6);
  auto runWith = [&](ObjectiveKind Kind) {
    AlignmentOptions Options;
    Options.Primary = PrimaryAligner::ExtTsp;
    Options.Objective = Kind;
    return alignProgram(W.Prog, W.Train, Options);
  };
  ProgramAlignment ExtA = runWith(ObjectiveKind::ExtTsp);
  ProgramAlignment ExtB = runWith(ObjectiveKind::ExtTsp);
  ProgramAlignment Fall = runWith(ObjectiveKind::Fallthrough);
  expectProgramEq(ExtA, ExtB);
  // The fallthrough-objective run is itself deterministic...
  expectProgramEq(Fall, runWith(ObjectiveKind::Fallthrough));
  // ...and the two objectives disagree somewhere on a workload this
  // size (they optimize different things).
  bool AnyDifference = false;
  for (size_t P = 0; P != ExtA.Procs.size(); ++P)
    AnyDifference |=
        ExtA.Procs[P].TspLayout.Order != Fall.Procs[P].TspLayout.Order;
  EXPECT_TRUE(AnyDifference);
}

//===--------------------------------------------------------------------===//
// Warm cache replays the chain merger bit-identically
//===--------------------------------------------------------------------===//

TEST(ExtTspAlignTest, WarmCacheReplaysExtTspWithZeroChainWork) {
  Workload W = makeWorkload(53);
  AlignmentOptions Options;
  Options.Primary = PrimaryAligner::ExtTsp;
  Options.Cache = CacheMode::Memory;
  CacheSession Session(Options);
  ASSERT_NE(Session.cache(), nullptr);

  ProgramAlignment Cold = alignProgram(W.Prog, W.Train, Options);
  CacheStats ColdStats = Session.stats();
  EXPECT_EQ(ColdStats.Hits, 0u);
  EXPECT_GT(ColdStats.Stores, 0u);

  ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Options);
  CacheStats WarmStats = Session.stats();
  EXPECT_EQ(WarmStats.Hits, ColdStats.Stores);
  // The chain merger runs under the solve-stage timer; a warm run must
  // never invoke it.
  EXPECT_EQ(Warm.SolverSeconds, 0.0);
  expectProgramEq(Cold, Warm);
}

//===--------------------------------------------------------------------===//
// Fingerprints key the objective parameters
//===--------------------------------------------------------------------===//

TEST(ExtTspAlignTest, FingerprintKeysEveryObjectiveParameter) {
  Workload W = makeWorkload(67, 1);
  const Procedure &Proc = W.Prog.proc(0);
  const ProcedureProfile &Train = W.Train.Procs[0];

  AlignmentOptions Base;
  Base.Primary = PrimaryAligner::ExtTsp;
  Fingerprint F = fingerprintProcedureInputs(Proc, Train, Base, 0);

  AlignmentOptions Tsp = Base;
  Tsp.Primary = PrimaryAligner::Tsp;
  EXPECT_NE(F, fingerprintProcedureInputs(Proc, Train, Tsp, 0));

  AlignmentOptions Objective = Base;
  Objective.Objective = ObjectiveKind::Fallthrough;
  EXPECT_NE(F, fingerprintProcedureInputs(Proc, Train, Objective, 0));

  AlignmentOptions FwdWin = Base;
  FwdWin.Model.ExtTspForwardWindow += 64;
  EXPECT_NE(F, fingerprintProcedureInputs(Proc, Train, FwdWin, 0));

  AlignmentOptions BwdWin = Base;
  BwdWin.Model.ExtTspBackwardWindow += 64;
  EXPECT_NE(F, fingerprintProcedureInputs(Proc, Train, BwdWin, 0));

  AlignmentOptions FwdW = Base;
  FwdW.Model.ExtTspForwardWeight = 0.25;
  EXPECT_NE(F, fingerprintProcedureInputs(Proc, Train, FwdW, 0));

  AlignmentOptions BwdW = Base;
  BwdW.Model.ExtTspBackwardWeight = 0.25;
  EXPECT_NE(F, fingerprintProcedureInputs(Proc, Train, BwdW, 0));
}

TEST(ExtTspAlignTest, FingerprintIgnoresSolverOptionsUnderExtTsp) {
  Workload W = makeWorkload(71, 1);
  const Procedure &Proc = W.Prog.proc(0);
  const ProcedureProfile &Train = W.Train.Procs[0];

  AlignmentOptions Ext;
  Ext.Primary = PrimaryAligner::ExtTsp;
  Fingerprint F = fingerprintProcedureInputs(Proc, Train, Ext, 0);

  // The chain merger never consults the annealer, so its results are
  // seed-independent and the fingerprint must not churn on seeds —
  // that is what lets one warm cache serve every --seed.
  AlignmentOptions Seeded = Ext;
  Seeded.Solver.Seed = 0xfeedULL;
  EXPECT_EQ(F, fingerprintProcedureInputs(Proc, Train, Seeded, 0));

  // Under the DTSP primary the same seed change must churn the key.
  AlignmentOptions TspA, TspB;
  TspB.Solver.Seed = 0xfeedULL;
  EXPECT_NE(fingerprintProcedureInputs(Proc, Train, TspA, 0),
            fingerprintProcedureInputs(Proc, Train, TspB, 0));

  // Symmetrically, Ext-TSP windows are irrelevant to (and must not
  // churn) a DTSP-primary key.
  AlignmentOptions TspWin;
  TspWin.Model.ExtTspForwardWindow += 64;
  EXPECT_EQ(fingerprintProcedureInputs(Proc, Train, TspA, 0),
            fingerprintProcedureInputs(Proc, Train, TspWin, 0));
}

TEST(ExtTspAlignTest, DiskCacheColdWarmBitIdenticalAndVersionGuarded) {
  Workload W = makeWorkload(83);
  std::string Dir = ::testing::TempDir() + "balign_exttsp_cache";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  AlignmentOptions Options;
  Options.Primary = PrimaryAligner::ExtTsp;
  Options.Cache = CacheMode::Disk;
  Options.CachePath = Dir;

  ProgramAlignment Cold;
  {
    CacheSession Session(Options);
    Cold = alignProgram(W.Prog, W.Train, Options);
    ASSERT_TRUE(Session.flush());
  }
  // A fresh session over the same directory replays from disk.
  {
    AlignmentOptions Reopened = Options;
    CacheSession Session(Reopened);
    ProgramAlignment Warm = alignProgram(W.Prog, W.Train, Reopened);
    EXPECT_GT(Session.stats().Hits, 0u);
    EXPECT_EQ(Warm.SolverSeconds, 0.0);
    expectProgramEq(Cold, Warm);
  }
  // Corrupt the store's version field: the whole store is discarded
  // (stale-format entries must never replay) and results recompute
  // bit-identically.
  std::string StoreFile = Dir + "/" + AlignmentCache::StoreFileName;
  {
    std::ifstream In(StoreFile, std::ios::binary);
    ASSERT_TRUE(In.good());
    std::vector<char> Bytes((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
    uint32_t Stale = CacheFormatVersion - 1;
    ASSERT_GE(Bytes.size(), size_t(12));
    std::memcpy(Bytes.data() + 8, &Stale, sizeof(Stale));
    std::ofstream Out(StoreFile, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  {
    AlignmentOptions Reopened = Options;
    CacheSession Session(Reopened);
    ProgramAlignment Recomputed = alignProgram(W.Prog, W.Train, Reopened);
    EXPECT_EQ(Session.stats().Hits, 0u);
    expectProgramEq(Cold, Recomputed);
  }
  std::filesystem::remove_all(Dir);
}
