//===- tests/support_test.cpp - Support library tests ----------------------===//

#include "align/Pipeline.h"
#include "support/Flags.h"
#include "support/Format.h"
#include "support/Parse.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace balign;

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(R.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(13);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> Sorted = V;
  R.shuffle(V);
  std::vector<int> Resorted = V;
  std::sort(Resorted.begin(), Resorted.end());
  EXPECT_EQ(Resorted, Sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng A(5);
  Rng Child = A.fork();
  // The child stream should not replay the parent's upcoming values.
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == Child.next();
  EXPECT_LT(Same, 2);
}

TEST(StatisticsTest, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(StatisticsTest, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4, 1}), 2.0);
  EXPECT_NEAR(geomean({2, 8, 4}), 4.0, 1e-12);
}

TEST(StatisticsTest, Stddev) {
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(StatisticsTest, Percentile) {
  std::vector<double> V{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(V, 25), 20.0);
}

TEST(FormatTest, Counts) {
  EXPECT_EQ(formatCount(999), "999");
  EXPECT_EQ(formatCount(13400), "13.4K");
  EXPECT_EQ(formatCount(11800000), "11.8M");
  EXPECT_EQ(formatCount(100000), "100.0K");
}

TEST(FormatTest, PercentAndFixed) {
  EXPECT_EQ(formatPercent(0.3312), "33.12%");
  EXPECT_EQ(formatPercent(0.0201, 2), "2.01%");
  EXPECT_EQ(formatFixed(1.005, 2), "1.00");
  EXPECT_EQ(formatNormalized(0.6699), "0.670");
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable T;
  T.addColumn("name");
  T.addColumn("value", TextTable::AlignKind::Right);
  T.addRow({"alpha", "1"});
  T.addRow({"b", "12345"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name  | value"), std::string::npos);
  EXPECT_NE(Out.find("alpha |     1"), std::string::npos);
  EXPECT_NE(Out.find("b     | 12345"), std::string::npos);
}

TEST(TableTest, SeparatorRows) {
  TextTable T;
  T.addColumn("x");
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  std::string Out = T.render();
  // Header separator plus the explicit one.
  size_t First = Out.find("-\n");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("-\n", First + 1), std::string::npos);
}

TEST(ParseFlagIntTest, AcceptsCompleteDecimalLiterals) {
  EXPECT_EQ(parseFlagInt("0"), 0u);
  EXPECT_EQ(parseFlagInt("1"), 1u);
  EXPECT_EQ(parseFlagInt("42"), 42u);
  EXPECT_EQ(parseFlagInt("007"), 7u);
  EXPECT_EQ(parseFlagInt("18446744073709551615"), UINT64_MAX);
}

TEST(ParseFlagIntTest, RejectsEverythingStrtoullAccepts) {
  EXPECT_FALSE(parseFlagInt(""));
  EXPECT_FALSE(parseFlagInt("12x"));   // Trailing garbage.
  EXPECT_FALSE(parseFlagInt("x12"));
  EXPECT_FALSE(parseFlagInt(" 12"));   // Leading whitespace.
  EXPECT_FALSE(parseFlagInt("12 "));
  EXPECT_FALSE(parseFlagInt("+12"));   // Signs.
  EXPECT_FALSE(parseFlagInt("-1"));
  EXPECT_FALSE(parseFlagInt("0x10"));  // Hex prefix.
  EXPECT_FALSE(parseFlagInt("1e3"));   // Scientific notation.
  EXPECT_FALSE(parseFlagInt("1.5"));
  EXPECT_FALSE(parseFlagInt("1_000"));
}

TEST(ParseFlagIntTest, RejectsOverflow) {
  // UINT64_MAX + 1 and friends must not wrap or saturate.
  EXPECT_FALSE(parseFlagInt("18446744073709551616"));
  EXPECT_FALSE(parseFlagInt("99999999999999999999"));
  EXPECT_FALSE(parseFlagInt("184467440737095516150"));
  EXPECT_EQ(parseFlagInt("18446744073709551615"), UINT64_MAX);
}

TEST(ParseFlagIntTest, BoundedOverloadEnforcesMax) {
  EXPECT_EQ(parseFlagInt("8", 64), 8u);
  EXPECT_EQ(parseFlagInt("64", 64), 64u);
  EXPECT_FALSE(parseFlagInt("65", 64));
  EXPECT_FALSE(parseFlagInt("18446744073709551615", 64));
}

TEST(ParseFlagIntTest, BoundedOverloadBoundaries) {
  // Value == Max is in range, including at both extremes of uint64_t.
  EXPECT_EQ(parseFlagInt("18446744073709551615", UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(parseFlagInt("0", 0), 0u);
  EXPECT_FALSE(parseFlagInt("1", 0));
  // Rejections are syntax-first: junk fails even when it "would fit".
  EXPECT_FALSE(parseFlagInt("", 64));
  EXPECT_FALSE(parseFlagInt("+8", 64));
  EXPECT_FALSE(parseFlagInt("\t8", 64));
  EXPECT_FALSE(parseFlagInt("0x8", 64));
}

namespace {

/// argv builder for the Flags helpers: keeps the strings alive and
/// hands out the mutable char** shape main() receives.
struct FakeArgv {
  explicit FakeArgv(std::vector<std::string> Args) : Store(std::move(Args)) {
    for (std::string &A : Store)
      Ptrs.push_back(A.data());
  }
  int argc() { return static_cast<int>(Ptrs.size()); }
  char **argv() { return Ptrs.data(); }
  std::vector<std::string> Store;
  std::vector<char *> Ptrs;
};

} // namespace

TEST(FlagsTest, FlagValueConsumesNextSlot) {
  FakeArgv A({"tool", "--out", "file.json", "tail"});
  int I = 1;
  const char *V = flagValue("--out", A.argc(), A.argv(), I);
  ASSERT_NE(V, nullptr);
  EXPECT_STREQ(V, "file.json");
  EXPECT_EQ(I, 2); // Points at the consumed value, loop ++I moves on.
}

TEST(FlagsTest, FlagValueAtEndOfArgvFailsWithoutAdvancing) {
  FakeArgv A({"tool", "--out"});
  int I = 1;
  EXPECT_EQ(flagValue("--out", A.argc(), A.argv(), I), nullptr);
  EXPECT_EQ(I, 1); // Must not walk past argv.
}

TEST(FlagsTest, FlagUIntParsesBoundedValue) {
  FakeArgv A({"tool", "--threads", "8"});
  int I = 1;
  uint64_t Out = 0;
  EXPECT_TRUE(flagUInt("--threads", A.argc(), A.argv(), I, Out, 64));
  EXPECT_EQ(Out, 8u);
  EXPECT_EQ(I, 2);
}

TEST(FlagsTest, FlagUIntAcceptsValueEqualToMax) {
  FakeArgv A({"tool", "--threads", "64"});
  int I = 1;
  uint64_t Out = 0;
  EXPECT_TRUE(flagUInt("--threads", A.argc(), A.argv(), I, Out, 64));
  EXPECT_EQ(Out, 64u);
}

TEST(FlagsTest, FlagUIntLeavesOutUntouchedOnFailure) {
  uint64_t Out = 1234;
  {
    FakeArgv A({"tool", "--threads", "sixty"});
    int I = 1;
    EXPECT_FALSE(flagUInt("--threads", A.argc(), A.argv(), I, Out, 64));
  }
  {
    FakeArgv A({"tool", "--threads", "65"});
    int I = 1;
    EXPECT_FALSE(flagUInt("--threads", A.argc(), A.argv(), I, Out, 64));
  }
  {
    FakeArgv A({"tool", "--threads"});
    int I = 1;
    EXPECT_FALSE(flagUInt("--threads", A.argc(), A.argv(), I, Out, 64));
    EXPECT_EQ(I, 1);
  }
  EXPECT_EQ(Out, 1234u);
}

TEST(SeedStreamTest, DerivedSeedsArePairwiseDistinct) {
  const uint64_t Root = 0x7357u;
  std::set<uint64_t> Seeds;
  for (size_t I = 0; I != 1024; ++I)
    Seeds.insert(derivedSolverSeed(Root, I));
  EXPECT_EQ(Seeds.size(), 1024u);
}

TEST(SeedStreamTest, DistinctForManyRootSeeds) {
  // Different (root, index) pairs a user might plausibly combine must
  // not alias either.
  std::set<uint64_t> Seeds;
  for (uint64_t Root : {0ull, 1ull, 0x7357ull, 0xdeadbeefull})
    for (size_t I = 0; I != 256; ++I)
      Seeds.insert(derivedSolverSeed(Root, I));
  EXPECT_EQ(Seeds.size(), 4u * 256u);
}

TEST(SeedStreamTest, StreamsAreUncorrelated) {
  // Adjacent derived seeds differ only by a constant, so the *generator*
  // must decorrelate them: first outputs all distinct, and adjacent
  // streams share (essentially) no values among their first 64 draws.
  const uint64_t Root = 0x7357u;
  std::set<uint64_t> FirstDraws;
  for (size_t I = 0; I != 1024; ++I)
    FirstDraws.insert(Rng(derivedSolverSeed(Root, I)).next());
  EXPECT_EQ(FirstDraws.size(), 1024u);

  for (size_t I = 0; I + 1 != 64; ++I) {
    Rng A(derivedSolverSeed(Root, I));
    Rng B(derivedSolverSeed(Root, I + 1));
    std::set<uint64_t> SeenA;
    for (int K = 0; K != 64; ++K)
      SeenA.insert(A.next());
    int Shared = 0;
    for (int K = 0; K != 64; ++K)
      Shared += SeenA.count(B.next()) ? 1 : 0;
    EXPECT_LT(Shared, 2) << "streams " << I << " and " << I + 1;
  }
}

TEST(SeedStreamTest, AdjacentStreamOutputsAvalanche) {
  // Bitwise correlation smoke test: xor of the first outputs of adjacent
  // streams should have close to half its bits set.
  const uint64_t Root = 1;
  double TotalBits = 0;
  const int Pairs = 256;
  for (size_t I = 0; I != Pairs; ++I) {
    uint64_t X = Rng(derivedSolverSeed(Root, I)).next();
    uint64_t Y = Rng(derivedSolverSeed(Root, I + 1)).next();
    TotalBits += __builtin_popcountll(X ^ Y);
  }
  double MeanBits = TotalBits / Pairs;
  EXPECT_GT(MeanBits, 24.0); // 32 expected for independent streams.
  EXPECT_LT(MeanBits, 40.0);
}
