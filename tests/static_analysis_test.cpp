//===- tests/static_analysis_test.cpp - Oracle tests for src/static ------===//
//
// Cross-checks the production analyses (CHK dominators, natural loops,
// reachability, flow reconstruction) against brute-force implementations
// on a few hundred generator CFGs, including defect-seeded ones with
// unreachable blocks and irreducible cycles.
//
//===--------------------------------------------------------------------===//

#include "profile/Trace.h"
#include "static/Dominators.h"
#include "static/FlowSolver.h"
#include "static/Loops.h"
#include "static/Reachability.h"
#include "workloads/Generator.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <set>
#include <vector>

using namespace balign;

namespace {

/// Forward BFS from \p Start, never entering \p Avoid. \p Start itself
/// is included (unless it equals Avoid). Avoid == InvalidBlock disables
/// the exclusion.
std::vector<bool> reachFromAvoiding(const Procedure &Proc, BlockId Start,
                                    BlockId Avoid) {
  std::vector<bool> Seen(Proc.numBlocks(), false);
  if (Start == Avoid)
    return Seen;
  std::vector<BlockId> Work{Start};
  Seen[Start] = true;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId S : Proc.successors(B))
      if (S != Avoid && !Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  return Seen;
}

/// Brute-force dominance: D dominates W iff W is reachable from the
/// entry and every entry ->* W path passes through D (checked by
/// deleting D and re-running reachability).
class DomOracle {
public:
  explicit DomOracle(const Procedure &Proc) {
    FromEntry = reachFromAvoiding(Proc, Proc.entry(), InvalidBlock);
    Without.reserve(Proc.numBlocks());
    for (BlockId D = 0; D != Proc.numBlocks(); ++D)
      Without.push_back(D == Proc.entry()
                            ? std::vector<bool>(Proc.numBlocks(), false)
                            : reachFromAvoiding(Proc, Proc.entry(), D));
  }

  bool reachable(BlockId W) const { return FromEntry[W]; }

  bool dominates(BlockId D, BlockId W) const {
    if (!FromEntry[W])
      return false;
    return D == W || !Without[D][W];
  }

  unsigned numStrictDominators(BlockId W) const {
    unsigned N = 0;
    for (BlockId D = 0; D != Without.size(); ++D)
      if (D != W && dominates(D, W))
        ++N;
    return N;
  }

private:
  std::vector<bool> FromEntry;
  std::vector<std::vector<bool>> Without;
};

/// A deterministic corpus of generator CFGs with varied shapes; every
/// third procedure gets a structural defect seeded so the oracles also
/// cover unreachable blocks and multi-entry cycles.
std::vector<Procedure> buildCorpus(size_t Count) {
  std::vector<Procedure> Corpus;
  Rng Root(0xd0417a11ULL);
  for (size_t I = 0; I != Count; ++I) {
    GenParams Params;
    Params.TargetBranchSites = 2 + static_cast<unsigned>(I % 13);
    Params.LoopFraction = 0.15 + 0.05 * static_cast<double>(I % 10);
    Params.TopTestedLoopFraction = (I % 3) * 0.4;
    Params.MultiwayFraction = (I % 4) * 0.08;
    Params.EarlyReturnProb = (I % 5) * 0.07;
    Rng R = Root.fork();
    Procedure Proc =
        generateProcedure("oracle" + std::to_string(I), Params, R).Proc;
    if (I % 3 == 1) {
      ProcedureProfile Zero;
      Zero.BlockCounts.assign(Proc.numBlocks(), 0);
      Zero.EdgeCounts.resize(Proc.numBlocks());
      for (BlockId B = 0; B != Proc.numBlocks(); ++B)
        Zero.EdgeCounts[B].assign(Proc.successors(B).size(), 0);
      DefectKind Kind = I % 9 == 1 ? DefectKind::UnreachableHot
                        : I % 2 == 0 ? DefectKind::IrreducibleLoop
                                     : DefectKind::NoExitLoop;
      seedDefect(Kind, Proc, Zero, R);
    }
    Corpus.push_back(std::move(Proc));
  }
  return Corpus;
}

TEST(DominatorOracleTest, PairwiseDominanceMatchesBruteForce) {
  for (const Procedure &Proc : buildCorpus(120)) {
    DomOracle Oracle(Proc);
    DominatorTree Dom = DominatorTree::compute(Proc);
    for (BlockId A = 0; A != Proc.numBlocks(); ++A) {
      ASSERT_EQ(Dom.reachable(A), Oracle.reachable(A))
          << Proc.getName() << " block " << A;
      for (BlockId B = 0; B != Proc.numBlocks(); ++B)
        ASSERT_EQ(Dom.dominates(A, B), Oracle.dominates(A, B))
            << Proc.getName() << " " << A << " dom " << B;
    }
  }
}

TEST(DominatorOracleTest, TreeDepthCountsStrictDominators) {
  for (const Procedure &Proc : buildCorpus(80)) {
    DomOracle Oracle(Proc);
    DominatorTree Dom = DominatorTree::compute(Proc);
    for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
      if (Dom.reachable(B)) {
        ASSERT_EQ(Dom.depth(B), Oracle.numStrictDominators(B))
            << Proc.getName() << " block " << B;
      }
    }
  }
}

TEST(DominatorOracleTest, ReversePostOrderCoversReachableBlocksOnce) {
  for (const Procedure &Proc : buildCorpus(80)) {
    DominatorTree Dom = DominatorTree::compute(Proc);
    const std::vector<BlockId> &Rpo = Dom.reversePostOrder();
    ASSERT_FALSE(Rpo.empty());
    EXPECT_EQ(Rpo.front(), Proc.entry());
    std::set<BlockId> Seen(Rpo.begin(), Rpo.end());
    ASSERT_EQ(Seen.size(), Rpo.size()) << "duplicate RPO entry";
    std::vector<bool> Reach =
        reachFromAvoiding(Proc, Proc.entry(), InvalidBlock);
    for (BlockId B = 0; B != Proc.numBlocks(); ++B)
      EXPECT_EQ(Seen.count(B) != 0, static_cast<bool>(Reach[B]));
    for (size_t I = 0; I != Rpo.size(); ++I)
      EXPECT_EQ(Dom.rpoIndex(Rpo[I]), I);
  }
}

TEST(ReachabilityOracleTest, BothDirectionsMatchBruteForce) {
  for (const Procedure &Proc : buildCorpus(120)) {
    Reachability R = computeReachability(Proc);
    std::vector<bool> Fwd =
        reachFromAvoiding(Proc, Proc.entry(), InvalidBlock);
    for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
      ASSERT_EQ(R.FromEntry[B], Fwd[B]) << Proc.getName() << " fwd " << B;
      std::vector<bool> From = reachFromAvoiding(Proc, B, InvalidBlock);
      bool CanExit = false;
      for (BlockId T = 0; T != Proc.numBlocks(); ++T)
        if (From[T] && Proc.block(T).Kind == TerminatorKind::Return)
          CanExit = true;
      ASSERT_EQ(R.ToExit[B], CanExit) << Proc.getName() << " bwd " << B;
      EXPECT_EQ(R.live(B), Fwd[B] && CanExit);
    }
  }
}

TEST(LoopOracleTest, LoopsMatchBruteForceDefinition) {
  for (const Procedure &Proc : buildCorpus(120)) {
    DomOracle Oracle(Proc);
    DominatorTree Dom = DominatorTree::compute(Proc);
    LoopInfo LI = LoopInfo::compute(Proc, Dom);

    for (const Loop &L : LI.Loops) {
      ASSERT_FALSE(L.BackEdges.empty());
      std::set<BlockId> Latches;
      for (const auto &[U, H] : L.BackEdges) {
        EXPECT_EQ(H, L.Header);
        // Back edges really are edges whose target dominates the source.
        const std::vector<BlockId> &Succs = Proc.successors(U);
        EXPECT_NE(std::find(Succs.begin(), Succs.end(), H), Succs.end());
        EXPECT_TRUE(Oracle.dominates(H, U));
        Latches.insert(U);
      }
      // Membership: B is in the natural loop iff B is the header or B
      // reaches some latch without passing through the header. Checked
      // for every block, so both inclusion and exclusion are covered.
      for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
        bool Expected = B == L.Header;
        if (!Expected && Oracle.reachable(B)) {
          std::vector<bool> From = reachFromAvoiding(Proc, B, L.Header);
          for (BlockId U : Latches)
            Expected = Expected || From[U];
        }
        ASSERT_EQ(L.contains(B), Expected)
            << Proc.getName() << " loop@" << L.Header << " block " << B;
      }
      // HasExit: recomputed from scratch.
      bool Exit = false;
      for (BlockId B : L.Blocks)
        for (BlockId S : Proc.successors(B))
          Exit = Exit || !L.contains(S);
      EXPECT_EQ(L.HasExit, Exit);
    }

    // Per-block depth is the number of loops containing the block, and
    // the innermost index points at the deepest such loop.
    for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
      unsigned Containing = 0;
      for (const Loop &L : LI.Loops)
        if (L.contains(B))
          ++Containing;
      ASSERT_EQ(LI.LoopDepth[B], Containing) << Proc.getName() << " " << B;
      if (Containing == 0) {
        EXPECT_EQ(LI.InnermostLoop[B], -1);
      } else {
        ASSERT_GE(LI.InnermostLoop[B], 0);
        const Loop &Inner = LI.Loops[LI.InnermostLoop[B]];
        EXPECT_TRUE(Inner.contains(B));
        EXPECT_EQ(Inner.Depth, LI.LoopDepth[B]);
      }
    }

    // Loop nesting depth counts the loops containing the header.
    for (const Loop &L : LI.Loops)
      EXPECT_EQ(L.Depth, LI.LoopDepth[L.Header]);

    // Irreducible edges certify multi-entry cycles: each is a real edge
    // whose target does not dominate its source yet closes a cycle.
    for (const auto &[U, V] : LI.IrreducibleEdges) {
      const std::vector<BlockId> &Succs = Proc.successors(U);
      EXPECT_NE(std::find(Succs.begin(), Succs.end(), V), Succs.end());
      EXPECT_FALSE(Oracle.dominates(V, U));
      EXPECT_TRUE(reachFromAvoiding(Proc, V, InvalidBlock)[U])
          << "irreducible edge must close a cycle";
    }
  }
}

TEST(LoopOracleTest, StructuredGeneratorCfgsAreReducible) {
  Rng Root(0x5eedULL);
  for (unsigned I = 0; I != 40; ++I) {
    GenParams Params;
    Params.TargetBranchSites = 3 + I % 10;
    Rng R = Root.fork();
    Procedure Proc =
        generateProcedure("red" + std::to_string(I), Params, R).Proc;
    DominatorTree Dom = DominatorTree::compute(Proc);
    LoopInfo LI = LoopInfo::compute(Proc, Dom);
    EXPECT_TRUE(LI.IrreducibleEdges.empty());
  }
}

//===--------------------------------------------------------------------===//
// Flow reconstruction round-trip
//===--------------------------------------------------------------------===//

/// Generates a flow-consistent trace profile for \p Proc.
ProcedureProfile traceProfile(const Procedure &Proc, uint64_t Seed) {
  Rng R(Seed);
  TraceGenOptions Opts;
  Opts.BranchBudget = 4000;
  return collectProfile(
      Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), R, Opts));
}

TEST(FlowSolverTest, ConsistentProfileReconstructsToItself) {
  Rng Root(0xf10eULL);
  for (unsigned I = 0; I != 40; ++I) {
    GenParams Params;
    Params.TargetBranchSites = 2 + I % 11;
    Rng R = Root.fork();
    Procedure Proc =
        generateProcedure("cons" + std::to_string(I), Params, R).Proc;
    ProcedureProfile Profile = traceProfile(Proc, 100 + I);
    FlowAnalysis FA = analyzeFlow(Proc, Profile);
    EXPECT_EQ(FA.Class, ProfileClass::Consistent) << FA.Contradiction;
    EXPECT_TRUE(FA.Violations.empty());
    EXPECT_TRUE(FA.Repairs.empty());
    EXPECT_EQ(FA.Repaired.BlockCounts, Profile.BlockCounts);
    EXPECT_EQ(FA.Repaired.EdgeCounts, Profile.EdgeCounts);
  }
}

TEST(FlowSolverTest, ErasedEdgeCountsAreReconstructedExactly) {
  Rng Root(0x2e9a12ULL);
  size_t TotalErased = 0;
  for (unsigned I = 0; I != 60; ++I) {
    GenParams Params;
    Params.TargetBranchSites = 2 + I % 12;
    Params.LoopFraction = 0.1 + 0.05 * (I % 8);
    Rng R = Root.fork();
    Procedure Proc =
        generateProcedure("rt" + std::to_string(I), Params, R).Proc;
    ProcedureProfile Original = traceProfile(Proc, 500 + I);

    // Erase one out-edge count from roughly a third of the branching
    // blocks — at most one per block, so every outflow equation has at
    // most one unknown and reconstruction is fully determined.
    ProcedureProfile Damaged = Original;
    EdgeMask Known(Proc.numBlocks());
    for (BlockId B = 0; B != Proc.numBlocks(); ++B)
      Known[B].assign(Proc.successors(B).size(), true);
    for (BlockId B = 0; B != Proc.numBlocks(); ++B) {
      if (Proc.successors(B).empty() || R.nextIndex(3) != 0)
        continue;
      size_t S = R.nextIndex(Proc.successors(B).size());
      Known[B][S] = false;
      Damaged.EdgeCounts[B][S] = 0;
      ++TotalErased;
    }

    FlowAnalysis FA = analyzeFlow(Proc, Damaged, &Known);
    ASSERT_NE(FA.Class, ProfileClass::Contradictory) << FA.Contradiction;
    EXPECT_EQ(FA.Repaired.BlockCounts, Original.BlockCounts);
    ASSERT_EQ(FA.Repaired.EdgeCounts, Original.EdgeCounts)
        << "round-trip failed for " << Proc.getName();
    // Every repair record must name a masked edge and its true count.
    for (const FlowRepair &Rep : FA.Repairs) {
      EXPECT_FALSE(Known[Rep.From][Rep.SuccIndex]);
      EXPECT_EQ(Rep.Count, Original.EdgeCounts[Rep.From][Rep.SuccIndex]);
      EXPECT_EQ(Rep.To, Proc.successors(Rep.From)[Rep.SuccIndex]);
    }
  }
  // The corpus must actually have exercised the solver.
  EXPECT_GT(TotalErased, 100u);
}

TEST(FlowSolverTest, OverclaimedEdgeIsContradictory) {
  // entry -> {b1, b2} -> ret, with an edge count exceeding its source's
  // block count: no assignment of unknowns can balance that.
  Procedure Proc("contra");
  Proc.addBlock({2, TerminatorKind::Conditional, ""});
  Proc.addBlock({2, TerminatorKind::Unconditional, ""});
  Proc.addBlock({2, TerminatorKind::Unconditional, ""});
  Proc.addBlock({1, TerminatorKind::Return, ""});
  Proc.addEdge(0, 1);
  Proc.addEdge(0, 2);
  Proc.addEdge(1, 3);
  Proc.addEdge(2, 3);
  ProcedureProfile Profile;
  Profile.BlockCounts = {10, 6, 4, 10};
  Profile.EdgeCounts = {{6, 4}, {99}, {4}, {}};
  FlowAnalysis FA = analyzeFlow(Proc, Profile);
  EXPECT_EQ(FA.Class, ProfileClass::Contradictory);
  EXPECT_FALSE(FA.Contradiction.empty());
}

TEST(FlowSolverTest, ProfileClassNamesAreStable) {
  EXPECT_STREQ(profileClassName(ProfileClass::Consistent), "consistent");
  EXPECT_STREQ(profileClassName(ProfileClass::Repairable), "repairable");
  EXPECT_STREQ(profileClassName(ProfileClass::Contradictory),
               "contradictory");
}

} // namespace
