//===- tests/machine_test.cpp - Machine-model tests ----------------------------===//

#include "machine/MachineModel.h"

#include <gtest/gtest.h>

using namespace balign;

TEST(MachineModelTest, Alpha21164MatchesTable3) {
  MachineModel M = MachineModel::alpha21164();
  EXPECT_EQ(M.Name, "alpha21164");
  // Table 3: no branch / fall through to common successor: 0 cycles.
  EXPECT_EQ(M.CondFallThrough, 0u);
  // Conditional branch to common following block: 1 cycle (misfetch).
  EXPECT_EQ(M.CondTakenCorrect, 1u);
  // Conditional mispredict, any layout: 5 cycles.
  EXPECT_EQ(M.CondMispredict, 5u);
  // Unconditional branch: 2 cycles.
  EXPECT_EQ(M.UncondBranch, 2u);
  // Register branch to predicted target: 1; to any other successor: 3.
  EXPECT_EQ(M.MultiwayPredicted, 1u);
  EXPECT_EQ(M.MultiwayMispredict, 3u);
}

TEST(MachineModelTest, DeepPipelineAmplifiesPenalties) {
  MachineModel Deep = MachineModel::deepPipeline();
  MachineModel Alpha = MachineModel::alpha21164();
  EXPECT_GT(Deep.CondMispredict, Alpha.CondMispredict);
  EXPECT_GT(Deep.CondTakenCorrect, Alpha.CondTakenCorrect);
  EXPECT_GT(Deep.UncondBranch, Alpha.UncondBranch);
  EXPECT_GT(Deep.MultiwayMispredict, Alpha.MultiwayMispredict);
}

TEST(MachineModelTest, CheapBranchOnlyChargesMispredicts) {
  MachineModel Cheap = MachineModel::cheapBranch();
  EXPECT_EQ(Cheap.CondTakenCorrect, 0u);
  EXPECT_EQ(Cheap.UncondBranch, 0u);
  EXPECT_EQ(Cheap.MultiwayPredicted, 0u);
  EXPECT_GT(Cheap.CondMispredict, 0u);
}
