//===- tests/shield_cache_test.cpp - cache fault injection & downgrade ------===//
//
// balign-shield coverage of the cache store's disk paths: transient
// flush/load faults absorbed by bounded-backoff retry (with the exact
// deterministic backoff sequence asserted through an injected sleep),
// persistent flush failure downgrading the session to memory-only, and
// persistent load failure degrading to a cold — never wrong — cache.
//
//===--------------------------------------------------------------------===//

#include "cache/Store.h"

#include "align/Pipeline.h"
#include "profile/Trace.h"
#include "robust/FaultInjector.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace balign;

namespace {

using ScopedFault = FaultInjector::ScopedFault;

/// Fresh empty directory under the gtest temp root.
std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "balign_shield_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string storePath(const std::string &Dir) {
  return Dir + "/" + AlignmentCache::StoreFileName;
}

/// A config whose retry sleeps record into \p Sleeps instead of
/// sleeping, so fault-matrix tests take no wall time.
AlignmentCacheConfig recordingConfig(std::vector<uint64_t> &Sleeps) {
  AlignmentCacheConfig Config;
  Config.RetrySleep = [&Sleeps](uint64_t Ms) { Sleeps.push_back(Ms); };
  return Config;
}

/// One profiled procedure plus its ground-truth alignment, for
/// populating stores with a real (validating) entry.
struct Workload {
  Program Prog{"shield_cache"};
  ProgramProfile Train;
  AlignmentOptions Options;
  ProgramAlignment Truth;
};

Workload makeWorkload(uint64_t Seed = 42) {
  Workload W;
  Rng R(Seed);
  GenParams Params;
  Params.TargetBranchSites = 4;
  W.Prog.addProcedure(generateProcedure("p0", Params, R).Proc);
  Rng TraceRng(Seed * 31);
  TraceGenOptions TraceOptions;
  TraceOptions.BranchBudget = 400;
  W.Train.Procs.push_back(collectProfile(
      W.Prog.proc(0), generateTrace(W.Prog.proc(0),
                                    BranchBehavior::uniform(W.Prog.proc(0)),
                                    TraceRng, TraceOptions)));
  W.Truth = alignProgram(W.Prog, W.Train, W.Options);
  return W;
}

} // namespace

TEST(ShieldCacheTest, TransientFlushFaultIsRetriedAway) {
  FaultInjector::instance().reset();
  std::string Dir = freshDir("transient_flush");
  std::vector<uint64_t> Sleeps;
  AlignmentCache Cache(Dir, recordingConfig(Sleeps));

  // The first two write attempts fail; the third (of the default
  // MaxAttempts = 3) succeeds.
  ScopedFault Fault(FaultSite::CacheFlush, FaultSpec::count(2));
  std::string Error;
  EXPECT_TRUE(Cache.flush(&Error)) << Error;

  CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Retries, 2u);
  EXPECT_EQ(Stats.FlushFailures, 0u);
  EXPECT_EQ(Sleeps, (std::vector<uint64_t>{1, 2}))
      << "deterministic doubling backoff, no jitter";
  EXPECT_TRUE(Cache.isDiskBacked());
  EXPECT_TRUE(std::filesystem::exists(storePath(Dir)));
  EXPECT_NE(Stats.BytesWritten, 0u);
}

TEST(ShieldCacheTest, PersistentFlushFaultDowngradesToMemoryOnly) {
  FaultInjector::instance().reset();
  std::string Dir = freshDir("persistent_flush");
  std::vector<uint64_t> Sleeps;
  Workload W = makeWorkload();
  AlignmentCache Cache(Dir, recordingConfig(Sleeps));
  Cache.store(W.Prog.proc(0), W.Train.Procs[0], W.Options, 0,
              W.Truth.Procs[0]);

  {
    ScopedFault Fault(FaultSite::CacheFlush, FaultSpec::always());
    std::string Error;
    EXPECT_FALSE(Cache.flush(&Error));
    EXPECT_NE(Error.find("injected fault at 'cache.flush'"),
              std::string::npos);
    EXPECT_NE(Error.find("downgraded to memory-only"), std::string::npos);
  }

  CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.FlushFailures, 1u);
  EXPECT_EQ(Stats.Retries, 2u) << "all three attempts were spent";
  EXPECT_EQ(Sleeps, (std::vector<uint64_t>{1, 2}));
  EXPECT_FALSE(Cache.isDiskBacked()) << "downgraded after the failure";
  EXPECT_FALSE(std::filesystem::exists(storePath(Dir)));

  // The downgrade sticks: with the fault gone, flushing is a successful
  // no-op (memory-only), and the in-memory entry still serves hits.
  std::string Error;
  EXPECT_TRUE(Cache.flush(&Error));
  EXPECT_FALSE(std::filesystem::exists(storePath(Dir)));
  ProcedureAlignment Out;
  EXPECT_TRUE(Cache.lookup(W.Prog.proc(0), W.Train.Procs[0], W.Options, 0,
                           Out));
  EXPECT_EQ(Out.TspLayout.Order, W.Truth.Procs[0].TspLayout.Order);
}

TEST(ShieldCacheTest, PersistentLoadFaultYieldsAColdCache) {
  FaultInjector::instance().reset();
  std::string Dir = freshDir("persistent_load");
  Workload W = makeWorkload();
  {
    AlignmentCache Writer(Dir);
    Writer.store(W.Prog.proc(0), W.Train.Procs[0], W.Options, 0,
                 W.Truth.Procs[0]);
    ASSERT_TRUE(Writer.flush());
  }
  ASSERT_TRUE(std::filesystem::exists(storePath(Dir)));

  std::vector<uint64_t> Sleeps;
  {
    // Every read attempt fails: the store opens cold instead of failing.
    ScopedFault Fault(FaultSite::CacheLoad, FaultSpec::always());
    AlignmentCache Cold(Dir, recordingConfig(Sleeps));
    CacheStats Stats = Cold.stats();
    EXPECT_EQ(Stats.LoadFailures, 1u);
    EXPECT_EQ(Stats.Retries, 2u);
    EXPECT_EQ(Stats.Entries, 0u);
    EXPECT_EQ(Sleeps, (std::vector<uint64_t>{1, 2}));
    ProcedureAlignment Out;
    EXPECT_FALSE(Cold.lookup(W.Prog.proc(0), W.Train.Procs[0], W.Options, 0,
                             Out))
        << "a cold cache misses; it never serves a wrong hit";
    // Still disk-backed: the next flush repairs the store.
    EXPECT_TRUE(Cold.isDiskBacked());
  }

  // A transient read fault (first attempt only) is absorbed by retry.
  Sleeps.clear();
  {
    ScopedFault Fault(FaultSite::CacheLoad, FaultSpec::once());
    AlignmentCache Warm(Dir, recordingConfig(Sleeps));
    CacheStats Stats = Warm.stats();
    EXPECT_EQ(Stats.LoadFailures, 0u);
    EXPECT_EQ(Stats.Retries, 1u);
    EXPECT_EQ(Stats.Entries, 1u);
    EXPECT_EQ(Sleeps, (std::vector<uint64_t>{1}));
    ProcedureAlignment Out;
    EXPECT_TRUE(Warm.lookup(W.Prog.proc(0), W.Train.Procs[0], W.Options, 0,
                            Out));
    EXPECT_EQ(Out.TspLayout.Order, W.Truth.Procs[0].TspLayout.Order);
  }
}

TEST(ShieldCacheTest, CacheSessionSurvivesFlushFaultsEndToEnd) {
  FaultInjector::instance().reset();
  std::string Dir = freshDir("session_flush");
  Workload W = makeWorkload();

  AlignmentOptions Options = W.Options;
  Options.Cache = CacheMode::Disk;
  Options.CachePath = Dir;
  std::vector<uint64_t> Sleeps;
  {
    CacheSession Session(Options, recordingConfig(Sleeps));
    ScopedFault Fault(FaultSite::CacheFlush, FaultSpec::always());
    // Alignment itself is unaffected by a broken disk.
    ProgramAlignment Result = alignProgram(W.Prog, W.Train, Options);
    EXPECT_EQ(Result.Procs[0].TspLayout.Order,
              W.Truth.Procs[0].TspLayout.Order);
    EXPECT_TRUE(Result.Failures.empty());

    std::string Error;
    EXPECT_FALSE(Session.flush(&Error));
    EXPECT_NE(Error.find("downgraded to memory-only"), std::string::npos);
    EXPECT_FALSE(Session.cache()->isDiskBacked());
    EXPECT_EQ(Session.stats().FlushFailures, 1u);
    // The session destructor's best-effort flush must not throw (it
    // lands on the downgraded no-op path).
  }
  EXPECT_FALSE(std::filesystem::exists(storePath(Dir)));

  // A fresh session over the same directory works normally again.
  {
    CacheSession Session(Options, recordingConfig(Sleeps));
    ProgramAlignment Result = alignProgram(W.Prog, W.Train, Options);
    EXPECT_EQ(Result.Procs[0].TspLayout.Order,
              W.Truth.Procs[0].TspLayout.Order);
    std::string Error;
    EXPECT_TRUE(Session.flush(&Error)) << Error;
  }
  EXPECT_TRUE(std::filesystem::exists(storePath(Dir)));
}
