//===- tests/align_layout_test.cpp - Layout materializer tests ----------------===//

#include "align/Layout.h"
#include "align/Penalty.h"
#include "ir/CFGBuilder.h"
#include "machine/MachineModel.h"
#include "profile/Trace.h"
#include "support/Random.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

using namespace balign;

namespace {

const MachineModel Alpha = MachineModel::alpha21164();

/// cond entry -> {A, B}; both jump to a shared return.
struct Diamond {
  Procedure Proc;
  ProcedureProfile Profile;
  BlockId C = 0, A = 1, B = 2, R = 3;

  Diamond(uint64_t CountA, uint64_t CountB)
      : Proc([] {
          CFGBuilder Builder("diamond");
          BlockId C = Builder.cond(4);
          BlockId A = Builder.jump(3);
          BlockId B = Builder.jump(5);
          BlockId R = Builder.ret(2);
          Builder.branches(C, A, B);
          Builder.edge(A, R).edge(B, R);
          return Builder.take();
        }()) {
    Profile = ProcedureProfile::zeroed(Proc);
    Profile.EdgeCounts[0] = {CountA, CountB};
    Profile.EdgeCounts[1] = {CountA};
    Profile.EdgeCounts[2] = {CountB};
    Profile.BlockCounts = {CountA + CountB, CountA, CountB, CountA + CountB};
  }
};

} // namespace

TEST(LayoutTest, OriginalAndValidity) {
  Diamond D(60, 40);
  Layout L = Layout::original(D.Proc);
  EXPECT_TRUE(L.isValid(D.Proc));
  EXPECT_EQ(L.Order, (std::vector<BlockId>{0, 1, 2, 3}));

  Layout Bad;
  Bad.Order = {1, 0, 2, 3}; // Entry not first.
  EXPECT_FALSE(Bad.isValid(D.Proc));
  Bad.Order = {0, 1, 1, 3}; // Duplicate.
  EXPECT_FALSE(Bad.isValid(D.Proc));
  Bad.Order = {0, 1, 2}; // Missing block.
  EXPECT_FALSE(Bad.isValid(D.Proc));
}

TEST(MaterializeTest, PredictedFallThroughNeedsNoFixup) {
  Diamond D(80, 20);
  // Layout: C, A (predicted, hot), B, R.
  Layout L;
  L.Order = {0, 1, 2, 3};
  MaterializedLayout Mat = materializeLayout(D.Proc, L, D.Profile, Alpha);
  EXPECT_EQ(Mat.NumFixups, 0u);
  EXPECT_EQ(Mat.Items.size(), 4u);
  const BranchArrangement &Arr = Mat.Arrangements[D.C];
  EXPECT_EQ(Arr.FallThroughTarget, D.A);
  EXPECT_EQ(Arr.TakenTarget, D.B);
  EXPECT_FALSE(Arr.PredictTaken);
  EXPECT_FALSE(Arr.FallThroughViaFixup);
}

TEST(MaterializeTest, InvertedBranchWhenColdSuccessorFollows) {
  Diamond D(80, 20);
  // Layout: C, B (cold), A, R: branch must take to A (predicted taken).
  Layout L;
  L.Order = {0, 2, 1, 3};
  MaterializedLayout Mat = materializeLayout(D.Proc, L, D.Profile, Alpha);
  EXPECT_EQ(Mat.NumFixups, 0u);
  const BranchArrangement &Arr = Mat.Arrangements[D.C];
  EXPECT_EQ(Arr.TakenTarget, D.A);
  EXPECT_EQ(Arr.FallThroughTarget, D.B);
  EXPECT_TRUE(Arr.PredictTaken);
}

TEST(MaterializeTest, FixupInsertedWhenNeitherSuccessorFollows) {
  Diamond D(80, 20);
  // Layout: C, R, A, B: neither successor of C follows it.
  Layout L;
  L.Order = {0, 3, 1, 2};
  MaterializedLayout Mat = materializeLayout(D.Proc, L, D.Profile, Alpha);
  EXPECT_EQ(Mat.NumFixups, 1u);
  EXPECT_EQ(Mat.Items.size(), 5u);
  const BranchArrangement &Arr = Mat.Arrangements[D.C];
  EXPECT_TRUE(Arr.FallThroughViaFixup);
  // Skewed 80/20: taking to the predicted successor is cheaper, so the
  // fixup jump realizes the cold edge.
  EXPECT_TRUE(Arr.PredictTaken);
  EXPECT_EQ(Arr.TakenTarget, D.A);
  EXPECT_EQ(Arr.FallThroughTarget, D.B);
  // The fixup sits directly after the conditional.
  const LayoutItem &Fixup = Mat.Items[Mat.ItemOfBlock[D.C] + 1];
  EXPECT_TRUE(Fixup.isFixup());
  EXPECT_EQ(Fixup.FixupTarget, D.B);
  EXPECT_EQ(Fixup.SizeInstrs, 1u);
}

TEST(MaterializeTest, AddressesAreContiguousMultiplesOfInstrSize) {
  Diamond D(50, 50);
  Layout L;
  L.Order = {0, 3, 1, 2}; // Forces a fixup.
  MaterializedLayout Mat = materializeLayout(D.Proc, L, D.Profile, Alpha);
  uint64_t Expect = 0;
  for (const LayoutItem &Item : Mat.Items) {
    EXPECT_EQ(Item.Address, Expect);
    Expect += static_cast<uint64_t>(Item.SizeInstrs) * BytesPerInstr;
  }
  EXPECT_EQ(Mat.TotalBytes, Expect);
  EXPECT_EQ(Mat.blockAddress(0), 0u);
}

TEST(MaterializeTest, FixupCountMatchesPenaltyModelOverRandomLayouts) {
  // Sweep random procedures/layouts: a fixup exists exactly when the
  // penalty model charged the fixup case.
  for (uint64_t Seed = 1; Seed != 10; ++Seed) {
    Rng StructureRng(Seed);
    GenParams Params;
    Params.TargetBranchSites = 6;
    GeneratedProcedure Gen = generateProcedure("m", Params, StructureRng);
    const Procedure &Proc = Gen.Proc;
    Rng TraceRng(Seed + 100);
    TraceGenOptions Options;
    Options.BranchBudget = 200;
    ProcedureProfile Profile = collectProfile(
        Proc, generateTrace(Proc, BranchBehavior::uniform(Proc), TraceRng,
                            Options));
    Layout L = Layout::original(Proc);
    Rng Shuffler(Seed + 200);
    for (size_t I = L.Order.size() - 1; I > 1; --I)
      std::swap(L.Order[I], L.Order[1 + Shuffler.nextIndex(I)]);

    MaterializedLayout Mat = materializeLayout(Proc, L, Profile, Alpha);
    size_t ExpectedFixups = 0;
    for (size_t I = 0; I != L.Order.size(); ++I) {
      BlockId B = L.Order[I];
      if (Proc.block(B).Kind != TerminatorKind::Conditional)
        continue;
      BlockId Next =
          I + 1 != L.Order.size() ? L.Order[I + 1] : InvalidBlock;
      const std::vector<BlockId> &Succs = Proc.successors(B);
      if (Next != Succs[0] && Next != Succs[1])
        ++ExpectedFixups;
    }
    EXPECT_EQ(Mat.NumFixups, ExpectedFixups) << "seed " << Seed;
    // Every original block is present exactly once.
    size_t RealBlocks = 0;
    for (const LayoutItem &Item : Mat.Items)
      RealBlocks += !Item.isFixup();
    EXPECT_EQ(RealBlocks, Proc.numBlocks());
  }
}

TEST(MaterializeTest, DeleteFallThroughJumpsShrinksCode) {
  // entry(jump)->mid(jump)->ret laid out in order: both jumps fall
  // through; with the option on, each loses its trailing jump.
  CFGBuilder B("shrink");
  BlockId J0 = B.jump(4);
  BlockId J1 = B.jump(3);
  BlockId R = B.ret(2);
  B.edge(J0, J1).edge(J1, R);
  Procedure Proc = B.take();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.EdgeCounts[J0] = {10};
  Profile.EdgeCounts[J1] = {10};
  Profile.BlockCounts = {10, 10, 10};

  MaterializedLayout Plain =
      materializeLayout(Proc, Layout::original(Proc), Profile, Alpha);
  MaterializeOptions Options;
  Options.DeleteFallThroughJumps = true;
  MaterializedLayout Dense = materializeLayout(
      Proc, Layout::original(Proc), Profile, Alpha, Options);
  EXPECT_EQ(Plain.TotalBytes, (4u + 3 + 2) * BytesPerInstr);
  EXPECT_EQ(Dense.TotalBytes, (3u + 2 + 2) * BytesPerInstr);
  EXPECT_EQ(Dense.Items[0].SizeInstrs, 3u);
  EXPECT_EQ(Dense.Items[1].SizeInstrs, 2u);
  EXPECT_EQ(Dense.Items[2].SizeInstrs, 2u); // Returns untouched.

  // A layout where J1 does NOT fall through keeps its jump.
  Layout Scrambled;
  Scrambled.Order = {J0, R, J1};
  MaterializedLayout Mixed =
      materializeLayout(Proc, Scrambled, Profile, Alpha, Options);
  // J0's successor J1 is not next: jump kept (4); J1 last: jump kept.
  EXPECT_EQ(Mixed.Items[Mixed.ItemOfBlock[J0]].SizeInstrs, 4u);
  EXPECT_EQ(Mixed.Items[Mixed.ItemOfBlock[J1]].SizeInstrs, 3u);
}

TEST(MaterializeTest, SingleInstructionJumpNeverShrinksToZero) {
  CFGBuilder B("tiny");
  BlockId J = B.jump(1);
  BlockId R = B.ret(1);
  B.edge(J, R);
  Procedure Proc = B.take();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.EdgeCounts[J] = {5};
  Profile.BlockCounts = {5, 5};
  MaterializeOptions Options;
  Options.DeleteFallThroughJumps = true;
  MaterializedLayout Mat = materializeLayout(
      Proc, Layout::original(Proc), Profile, Alpha, Options);
  EXPECT_EQ(Mat.Items[0].SizeInstrs, 1u);
}

TEST(MaterializeTest, MultiwayPredictionRecorded) {
  CFGBuilder B("multi");
  BlockId M = B.multi(4);
  BlockId A0 = B.ret(1);
  BlockId A1 = B.ret(1);
  BlockId A2 = B.ret(1);
  B.edge(M, A0).edge(M, A1).edge(M, A2);
  Procedure Proc = B.take();
  ProcedureProfile Profile = ProcedureProfile::zeroed(Proc);
  Profile.EdgeCounts[0] = {5, 80, 15};
  Profile.BlockCounts = {100, 5, 80, 15};
  MaterializedLayout Mat =
      materializeLayout(Proc, Layout::original(Proc), Profile, Alpha);
  EXPECT_EQ(Mat.MultiwayPrediction[M], 1u);
  EXPECT_EQ(Mat.NumFixups, 0u);
}
